#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace ndb::util {

std::vector<std::string> split(std::string_view text, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            break;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string_view trim(std::string_view text) {
    while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
        text.remove_prefix(1);
    }
    while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
        text.remove_suffix(1);
    }
    return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.substr(0, prefix.size()) == prefix;
}

std::string format(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string s(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
    if (n > 0) std::vsnprintf(s.data(), s.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return s;
}

std::string pad(std::string_view text, std::size_t width) {
    std::string s{text.substr(0, width)};
    s.resize(width, ' ');
    return s;
}

}  // namespace ndb::util
