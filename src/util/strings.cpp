#include "util/strings.h"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace ndb::util {

std::vector<std::string> split(std::string_view text, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            break;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string_view trim(std::string_view text) {
    while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
        text.remove_prefix(1);
    }
    while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
        text.remove_suffix(1);
    }
    return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.substr(0, prefix.size()) == prefix;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
    if (text.empty()) return false;
    std::uint64_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9') return false;
        const auto digit = static_cast<std::uint64_t>(c - '0');
        // Overflow is damage, not a value: wrapping would silently produce
        // a different number than the one written down.
        if (value > (UINT64_MAX - digit) / 10) return false;
        value = value * 10 + digit;
    }
    out = value;
    return true;
}

bool parse_double(std::string_view text, double& out) {
    if (text.empty()) return false;
    const std::string owned(text);  // strtod needs a terminator
    char* end = nullptr;
    const double value = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size()) return false;
    if (!std::isfinite(value)) return false;
    out = value;
    return true;
}

std::string format(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string s(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
    if (n > 0) std::vsnprintf(s.data(), s.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return s;
}

std::string pad(std::string_view text, std::size_t width) {
    std::string s{text.substr(0, width)};
    s.resize(width, ' ');
    return s;
}

}  // namespace ndb::util
