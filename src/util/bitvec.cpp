#include "util/bitvec.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace ndb::util {

namespace {

int hex_digit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

// Mask of the low `rem` bits of the top word (rem in [1..64]).
std::uint64_t top_mask(int width) {
    const int rem = width % 64;
    return rem == 0 ? ~0ull : (~0ull >> (64 - rem));
}

}  // namespace

Bitvec::Bitvec(int width) : width_(width) {
    if (width < 0) throw std::invalid_argument("Bitvec: negative width");
    if (width <= 64) {
        inline_ = 0;
    } else {
        heap_ = new std::uint64_t[static_cast<std::size_t>(words_for(width))]();
    }
}

Bitvec::Bitvec(int width, std::uint64_t value) : Bitvec(width) {
    if (width > 0) {
        words()[0] = value;
        normalize();
    }
}

Bitvec::Bitvec(const Bitvec& o) : width_(o.width_) {
    if (is_inline()) {
        inline_ = o.inline_;
    } else {
        const std::size_t n = static_cast<std::size_t>(word_count());
        heap_ = new std::uint64_t[n];
        std::memcpy(heap_, o.heap_, n * sizeof(std::uint64_t));
    }
}

Bitvec::Bitvec(Bitvec&& o) noexcept : width_(o.width_) {
    if (is_inline()) {
        inline_ = o.inline_;
    } else {
        heap_ = o.heap_;
        o.width_ = 0;
        o.inline_ = 0;
    }
}

Bitvec& Bitvec::operator=(const Bitvec& o) {
    if (this == &o) return *this;
    if (!is_inline() && !o.is_inline() && word_count() == o.word_count()) {
        // Same heap footprint: reuse the allocation.
        width_ = o.width_;
        std::memcpy(heap_, o.heap_, static_cast<std::size_t>(word_count()) *
                                        sizeof(std::uint64_t));
        return *this;
    }
    // Acquire the replacement storage before releasing the old one so a
    // throwing allocation leaves *this untouched (no dangling heap_).
    std::uint64_t* fresh = nullptr;
    if (!o.is_inline()) {
        const std::size_t n = static_cast<std::size_t>(o.word_count());
        fresh = new std::uint64_t[n];
        std::memcpy(fresh, o.heap_, n * sizeof(std::uint64_t));
    }
    if (!is_inline()) delete[] heap_;
    width_ = o.width_;
    if (is_inline()) {
        inline_ = o.inline_;
    } else {
        heap_ = fresh;
    }
    return *this;
}

Bitvec& Bitvec::operator=(Bitvec&& o) noexcept {
    if (this == &o) return *this;
    if (!is_inline()) delete[] heap_;
    width_ = o.width_;
    if (is_inline()) {
        inline_ = o.inline_;
    } else {
        heap_ = o.heap_;
        o.width_ = 0;
        o.inline_ = 0;
    }
    return *this;
}

Bitvec Bitvec::from_bytes(std::span<const std::uint8_t> be_bytes, int width) {
    Bitvec r(width);
    std::uint64_t* w = r.words();
    // Byte 0 of the input is the most significant byte of the value: walk
    // from the tail, filling whole words.
    std::size_t bit = 0;
    for (auto it = be_bytes.rbegin(); it != be_bytes.rend(); ++it, bit += 8) {
        const std::uint8_t b = *it;
        if (b == 0) continue;
        if (bit + 8 <= static_cast<std::size_t>(width)) {
            // `bit` advances in whole bytes, so the chunk never straddles words.
            w[bit / 64] |= static_cast<std::uint64_t>(b) << (bit % 64);
        } else {
            // Partial or fully-excess byte: excess high-order bits must be 0.
            for (int k = 0; k < 8; ++k) {
                if (!((b >> k) & 1)) continue;
                if (bit + static_cast<std::size_t>(k) >=
                    static_cast<std::size_t>(width)) {
                    throw std::invalid_argument(
                        "Bitvec::from_bytes: value exceeds width");
                }
                const std::size_t pos = bit + static_cast<std::size_t>(k);
                w[pos / 64] |= 1ull << (pos % 64);
            }
        }
    }
    return r;
}

Bitvec Bitvec::from_hex(std::string_view hex, int width) {
    if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
    Bitvec r(width);
    int bit = 0;
    for (auto it = hex.rbegin(); it != hex.rend(); ++it) {
        if (*it == '_' || *it == '\'') continue;
        const int d = hex_digit(*it);
        if (d < 0) throw std::invalid_argument("Bitvec::from_hex: bad digit");
        for (int b = 0; b < 4; ++b, ++bit) {
            const bool on = (d >> b) & 1;
            if (bit >= width) {
                if (on) throw std::invalid_argument("Bitvec::from_hex: value exceeds width");
                continue;
            }
            if (on) r.set_bit(bit, true);
        }
    }
    return r;
}

Bitvec Bitvec::ones(int width) {
    Bitvec r(width);
    std::uint64_t* w = r.words();
    for (int i = 0; i < r.word_count(); ++i) w[i] = ~0ull;
    r.normalize();
    return r;
}

void Bitvec::normalize() {
    if (width_ == 0) {
        inline_ = 0;
        return;
    }
    words()[word_count() - 1] &= top_mask(width_);
}

bool Bitvec::fits_u64() const {
    const std::uint64_t* w = words();
    for (int i = 1; i < word_count(); ++i) {
        if (w[i] != 0) return false;
    }
    return true;
}

bool Bitvec::bit(int i) const {
    if (i < 0 || i >= width_) throw std::out_of_range("Bitvec::bit");
    return (words()[i / 64] >> (i % 64)) & 1;
}

void Bitvec::set_bit(int i, bool v) {
    if (i < 0 || i >= width_) throw std::out_of_range("Bitvec::set_bit");
    const std::uint64_t mask = 1ull << (i % 64);
    if (v) {
        words()[i / 64] |= mask;
    } else {
        words()[i / 64] &= ~mask;
    }
}

std::size_t Bitvec::write_bytes(std::span<std::uint8_t> out) const {
    const std::size_t n = static_cast<std::size_t>((width_ + 7) / 8);
    if (out.size() < n) throw std::invalid_argument("Bitvec::write_bytes: short buffer");
    const std::uint64_t* w = words();
    for (std::size_t i = 0; i < n; ++i) {
        // Byte i of the output holds value bits [8*(n-1-i) .. 8*(n-1-i)+7];
        // byte-aligned positions never straddle a word boundary.
        const std::size_t bit = 8 * (n - 1 - i);
        out[i] = static_cast<std::uint8_t>(w[bit / 64] >> (bit % 64));
    }
    return n;
}

std::vector<std::uint8_t> Bitvec::to_bytes() const {
    std::vector<std::uint8_t> out(static_cast<std::size_t>((width_ + 7) / 8), 0);
    write_bytes(out);
    return out;
}

std::string Bitvec::to_hex() const {
    static const char* digits = "0123456789abcdef";
    const int n = hex_digit_count();
    std::string s = "0x";
    s.reserve(2 + static_cast<std::size_t>(n));
    for (int i = n - 1; i >= 0; --i) {
        s.push_back(digits[nibble(i)]);
    }
    return s;
}

std::string Bitvec::to_string() const {
    return std::to_string(width_) + "w" + to_hex();
}

bool Bitvec::is_zero() const {
    const std::uint64_t* w = words();
    for (int i = 0; i < word_count(); ++i) {
        if (w[i] != 0) return false;
    }
    return true;
}

bool Bitvec::is_ones() const {
    if (width_ == 0) return true;
    const std::uint64_t* w = words();
    for (int i = 0; i < word_count() - 1; ++i) {
        if (w[i] != ~0ull) return false;
    }
    return w[word_count() - 1] == top_mask(width_);
}

Bitvec Bitvec::add(const Bitvec& o) const {
    if (o.width_ != width_) throw std::invalid_argument("Bitvec::add width mismatch");
    Bitvec r(width_);
    const std::uint64_t* a = words();
    const std::uint64_t* b = o.words();
    std::uint64_t* out = r.words();
    unsigned __int128 carry = 0;
    for (int i = 0; i < word_count(); ++i) {
        const unsigned __int128 s =
            static_cast<unsigned __int128>(a[i]) + b[i] + carry;
        out[i] = static_cast<std::uint64_t>(s);
        carry = s >> 64;
    }
    r.normalize();
    return r;
}

Bitvec Bitvec::sub(const Bitvec& o) const { return add(o.neg()); }

Bitvec Bitvec::neg() const { return bnot().add(Bitvec(width_, width_ ? 1 : 0)); }

Bitvec Bitvec::mul(const Bitvec& o) const {
    if (o.width_ != width_) throw std::invalid_argument("Bitvec::mul width mismatch");
    Bitvec r(width_);
    const std::uint64_t* a = words();
    const std::uint64_t* b = o.words();
    std::uint64_t* out = r.words();
    for (int i = 0; i < word_count(); ++i) {
        unsigned __int128 carry = 0;
        for (int j = 0; i + j < word_count(); ++j) {
            const unsigned __int128 cur =
                static_cast<unsigned __int128>(a[i]) * b[j] + out[i + j] + carry;
            out[i + j] = static_cast<std::uint64_t>(cur);
            carry = cur >> 64;
        }
    }
    r.normalize();
    return r;
}

Bitvec Bitvec::band(const Bitvec& o) const {
    if (o.width_ != width_) throw std::invalid_argument("Bitvec::band width mismatch");
    Bitvec r(width_);
    const std::uint64_t* a = words();
    const std::uint64_t* b = o.words();
    std::uint64_t* out = r.words();
    for (int i = 0; i < word_count(); ++i) out[i] = a[i] & b[i];
    return r;
}

Bitvec Bitvec::bor(const Bitvec& o) const {
    if (o.width_ != width_) throw std::invalid_argument("Bitvec::bor width mismatch");
    Bitvec r(width_);
    const std::uint64_t* a = words();
    const std::uint64_t* b = o.words();
    std::uint64_t* out = r.words();
    for (int i = 0; i < word_count(); ++i) out[i] = a[i] | b[i];
    return r;
}

Bitvec Bitvec::bxor(const Bitvec& o) const {
    if (o.width_ != width_) throw std::invalid_argument("Bitvec::bxor width mismatch");
    Bitvec r(width_);
    const std::uint64_t* a = words();
    const std::uint64_t* b = o.words();
    std::uint64_t* out = r.words();
    for (int i = 0; i < word_count(); ++i) out[i] = a[i] ^ b[i];
    return r;
}

Bitvec Bitvec::bnot() const {
    Bitvec r(width_);
    const std::uint64_t* a = words();
    std::uint64_t* out = r.words();
    for (int i = 0; i < word_count(); ++i) out[i] = ~a[i];
    r.normalize();
    return r;
}

Bitvec Bitvec::shl(int amount) const {
    if (amount < 0) throw std::invalid_argument("Bitvec::shl negative shift");
    Bitvec r(width_);
    if (amount >= width_) return r;
    const std::uint64_t* a = words();
    std::uint64_t* out = r.words();
    const int word_shift = amount / 64;
    const int bit_shift = amount % 64;
    for (int i = word_count() - 1; i >= word_shift; --i) {
        std::uint64_t v = a[i - word_shift] << bit_shift;
        if (bit_shift != 0 && i - word_shift - 1 >= 0) {
            v |= a[i - word_shift - 1] >> (64 - bit_shift);
        }
        out[i] = v;
    }
    r.normalize();
    return r;
}

Bitvec Bitvec::lshr(int amount) const {
    if (amount < 0) throw std::invalid_argument("Bitvec::lshr negative shift");
    Bitvec r(width_);
    if (amount >= width_) return r;
    const std::uint64_t* a = words();
    std::uint64_t* out = r.words();
    const int word_shift = amount / 64;
    const int bit_shift = amount % 64;
    const int n = word_count();
    for (int i = 0; i + word_shift < n; ++i) {
        std::uint64_t v = a[i + word_shift] >> bit_shift;
        if (bit_shift != 0 && i + word_shift + 1 < n) {
            v |= a[i + word_shift + 1] << (64 - bit_shift);
        }
        out[i] = v;
    }
    return r;
}

bool Bitvec::eq(const Bitvec& o) const {
    if (o.width_ != width_) throw std::invalid_argument("Bitvec::eq width mismatch");
    return *this == o;
}

bool Bitvec::ult(const Bitvec& o) const {
    if (o.width_ != width_) throw std::invalid_argument("Bitvec::ult width mismatch");
    const std::uint64_t* a = words();
    const std::uint64_t* b = o.words();
    for (int i = word_count() - 1; i >= 0; --i) {
        if (a[i] != b[i]) return a[i] < b[i];
    }
    return false;
}

bool Bitvec::ule(const Bitvec& o) const { return !o.ult(*this); }

Bitvec Bitvec::slice(int hi, int lo) const {
    if (lo < 0 || hi >= width_ || hi < lo) throw std::out_of_range("Bitvec::slice");
    Bitvec r(hi - lo + 1);
    const std::uint64_t* a = words();
    std::uint64_t* out = r.words();
    const int word_shift = lo / 64;
    const int bit_shift = lo % 64;
    const int n_in = word_count();
    for (int i = 0; i < r.word_count(); ++i) {
        std::uint64_t v = 0;
        if (i + word_shift < n_in) v = a[i + word_shift] >> bit_shift;
        if (bit_shift != 0 && i + word_shift + 1 < n_in) {
            v |= a[i + word_shift + 1] << (64 - bit_shift);
        }
        out[i] = v;
    }
    r.normalize();
    return r;
}

void Bitvec::set_slice(int hi, int lo, const Bitvec& v) {
    if (lo < 0 || hi >= width_ || hi < lo) throw std::out_of_range("Bitvec::set_slice");
    const int n = hi - lo + 1;
    std::uint64_t* w = words();
    const std::uint64_t* src = v.words();
    const int src_words = v.word_count();
    int written = 0;
    while (written < n) {
        const int pos = lo + written;
        const int in_word = pos % 64;
        const int chunk = std::min({n - written, 64 - in_word});
        const int sbit = written;
        std::uint64_t bits = sbit / 64 < src_words ? src[sbit / 64] >> (sbit % 64) : 0;
        if (sbit % 64 != 0 && sbit / 64 + 1 < src_words) {
            bits |= src[sbit / 64 + 1] << (64 - sbit % 64);
        }
        // Bits of `v` beyond its width read as zero.
        if (sbit + chunk > v.width_) {
            const int live = std::max(0, v.width_ - sbit);
            bits &= live >= 64 ? ~0ull : ((1ull << live) - 1);
        }
        const std::uint64_t mask =
            (chunk >= 64 ? ~0ull : ((1ull << chunk) - 1)) << in_word;
        w[pos / 64] = (w[pos / 64] & ~mask) | ((bits << in_word) & mask);
        written += chunk;
    }
}

Bitvec Bitvec::concat(const Bitvec& hi, const Bitvec& lo) {
    Bitvec r(hi.width_ + lo.width_);
    std::uint64_t* out = r.words();
    const std::uint64_t* lw = lo.words();
    for (int i = 0; i < lo.word_count() && i < r.word_count(); ++i) out[i] = lw[i];
    if (hi.width_ > 0) {
        const std::uint64_t* hw = hi.words();
        const int shift_words = lo.width_ / 64;
        const int shift_bits = lo.width_ % 64;
        for (int i = 0; i < hi.word_count(); ++i) {
            const int base = i + shift_words;
            if (base < r.word_count()) out[base] |= hw[i] << shift_bits;
            if (shift_bits != 0 && base + 1 < r.word_count()) {
                out[base + 1] |= hw[i] >> (64 - shift_bits);
            }
        }
    }
    r.normalize();
    return r;
}

Bitvec Bitvec::resize(int new_width) const {
    Bitvec r(new_width);
    const std::uint64_t* a = words();
    std::uint64_t* out = r.words();
    const int n = std::min(word_count(), r.word_count());
    for (int i = 0; i < n; ++i) out[i] = a[i];
    r.normalize();
    return r;
}

std::size_t Bitvec::hash() const {
    std::size_t h = static_cast<std::size_t>(width_) * 0x9e3779b97f4a7c15ull;
    const std::uint64_t* w = words();
    for (int i = 0; i < word_count(); ++i) {
        h ^= w[i] + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
}

}  // namespace ndb::util
