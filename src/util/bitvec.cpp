#include "util/bitvec.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace ndb::util {

namespace {

int words_for(int width) { return (width + 63) / 64; }

int hex_digit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

}  // namespace

Bitvec::Bitvec(int width) : width_(width), words_(words_for(width), 0) {
    if (width < 0) throw std::invalid_argument("Bitvec: negative width");
}

Bitvec::Bitvec(int width, std::uint64_t value) : Bitvec(width) {
    if (width > 0) {
        words_[0] = value;
        normalize();
    }
}

Bitvec Bitvec::from_bytes(std::span<const std::uint8_t> be_bytes, int width) {
    Bitvec r(width);
    // Byte 0 of the input is the most significant byte of the value.
    int bit = 0;  // position from the LSB
    for (auto it = be_bytes.rbegin(); it != be_bytes.rend(); ++it) {
        for (int b = 0; b < 8; ++b, ++bit) {
            if (bit >= width) {
                if ((*it >> b) & 1) {
                    throw std::invalid_argument("Bitvec::from_bytes: value exceeds width");
                }
                continue;
            }
            if ((*it >> b) & 1) r.set_bit(bit, true);
        }
    }
    return r;
}

Bitvec Bitvec::from_hex(std::string_view hex, int width) {
    if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
    Bitvec r(width);
    int bit = 0;
    for (auto it = hex.rbegin(); it != hex.rend(); ++it) {
        if (*it == '_' || *it == '\'') continue;
        const int d = hex_digit(*it);
        if (d < 0) throw std::invalid_argument("Bitvec::from_hex: bad digit");
        for (int b = 0; b < 4; ++b, ++bit) {
            const bool on = (d >> b) & 1;
            if (bit >= width) {
                if (on) throw std::invalid_argument("Bitvec::from_hex: value exceeds width");
                continue;
            }
            if (on) r.set_bit(bit, true);
        }
        if (*it == '_') continue;
    }
    return r;
}

Bitvec Bitvec::ones(int width) {
    Bitvec r(width);
    for (auto& w : r.words_) w = ~0ull;
    r.normalize();
    return r;
}

void Bitvec::normalize() {
    if (words_.empty()) return;
    const int rem = width_ % 64;
    if (rem != 0) {
        words_.back() &= (~0ull >> (64 - rem));
    }
}

std::uint64_t Bitvec::to_u64() const { return words_.empty() ? 0 : words_[0]; }

bool Bitvec::fits_u64() const {
    for (std::size_t i = 1; i < words_.size(); ++i) {
        if (words_[i] != 0) return false;
    }
    return true;
}

bool Bitvec::bit(int i) const {
    if (i < 0 || i >= width_) throw std::out_of_range("Bitvec::bit");
    return (words_[i / 64] >> (i % 64)) & 1;
}

void Bitvec::set_bit(int i, bool v) {
    if (i < 0 || i >= width_) throw std::out_of_range("Bitvec::set_bit");
    const std::uint64_t mask = 1ull << (i % 64);
    if (v) {
        words_[i / 64] |= mask;
    } else {
        words_[i / 64] &= ~mask;
    }
}

std::vector<std::uint8_t> Bitvec::to_bytes() const {
    const int n = (width_ + 7) / 8;
    std::vector<std::uint8_t> out(n, 0);
    for (int i = 0; i < width_; ++i) {
        if (!bit(i)) continue;
        const int byte_from_lsb = i / 8;
        out[n - 1 - byte_from_lsb] |= static_cast<std::uint8_t>(1u << (i % 8));
    }
    return out;
}

std::string Bitvec::to_hex() const {
    static const char* digits = "0123456789abcdef";
    const int n = std::max(1, (width_ + 3) / 4);
    std::string s = "0x";
    for (int i = n - 1; i >= 0; --i) {
        int d = 0;
        for (int b = 0; b < 4; ++b) {
            const int pos = i * 4 + b;
            if (pos < width_ && bit(pos)) d |= 1 << b;
        }
        s.push_back(digits[d]);
    }
    return s;
}

std::string Bitvec::to_string() const {
    return std::to_string(width_) + "w" + to_hex();
}

bool Bitvec::is_zero() const {
    return std::all_of(words_.begin(), words_.end(),
                       [](std::uint64_t w) { return w == 0; });
}

bool Bitvec::is_ones() const { return *this == ones(width_); }

Bitvec Bitvec::add(const Bitvec& o) const {
    if (o.width_ != width_) throw std::invalid_argument("Bitvec::add width mismatch");
    Bitvec r(width_);
    unsigned __int128 carry = 0;
    for (int i = 0; i < word_count(); ++i) {
        const unsigned __int128 s =
            static_cast<unsigned __int128>(words_[i]) + o.words_[i] + carry;
        r.words_[i] = static_cast<std::uint64_t>(s);
        carry = s >> 64;
    }
    r.normalize();
    return r;
}

Bitvec Bitvec::sub(const Bitvec& o) const { return add(o.neg()); }

Bitvec Bitvec::neg() const { return bnot().add(Bitvec(width_, width_ ? 1 : 0)); }

Bitvec Bitvec::mul(const Bitvec& o) const {
    if (o.width_ != width_) throw std::invalid_argument("Bitvec::mul width mismatch");
    Bitvec r(width_);
    for (int i = 0; i < word_count(); ++i) {
        unsigned __int128 carry = 0;
        for (int j = 0; i + j < word_count(); ++j) {
            const unsigned __int128 cur =
                static_cast<unsigned __int128>(words_[i]) * o.words_[j] +
                r.words_[i + j] + carry;
            r.words_[i + j] = static_cast<std::uint64_t>(cur);
            carry = cur >> 64;
        }
    }
    r.normalize();
    return r;
}

Bitvec Bitvec::band(const Bitvec& o) const {
    if (o.width_ != width_) throw std::invalid_argument("Bitvec::band width mismatch");
    Bitvec r(width_);
    for (int i = 0; i < word_count(); ++i) r.words_[i] = words_[i] & o.words_[i];
    return r;
}

Bitvec Bitvec::bor(const Bitvec& o) const {
    if (o.width_ != width_) throw std::invalid_argument("Bitvec::bor width mismatch");
    Bitvec r(width_);
    for (int i = 0; i < word_count(); ++i) r.words_[i] = words_[i] | o.words_[i];
    return r;
}

Bitvec Bitvec::bxor(const Bitvec& o) const {
    if (o.width_ != width_) throw std::invalid_argument("Bitvec::bxor width mismatch");
    Bitvec r(width_);
    for (int i = 0; i < word_count(); ++i) r.words_[i] = words_[i] ^ o.words_[i];
    return r;
}

Bitvec Bitvec::bnot() const {
    Bitvec r(width_);
    for (int i = 0; i < word_count(); ++i) r.words_[i] = ~words_[i];
    r.normalize();
    return r;
}

Bitvec Bitvec::shl(int amount) const {
    if (amount < 0) throw std::invalid_argument("Bitvec::shl negative shift");
    Bitvec r(width_);
    for (int i = width_ - 1; i >= amount; --i) r.set_bit(i, bit(i - amount));
    return r;
}

Bitvec Bitvec::lshr(int amount) const {
    if (amount < 0) throw std::invalid_argument("Bitvec::lshr negative shift");
    Bitvec r(width_);
    for (int i = 0; i + amount < width_; ++i) r.set_bit(i, bit(i + amount));
    return r;
}

bool Bitvec::eq(const Bitvec& o) const {
    if (o.width_ != width_) throw std::invalid_argument("Bitvec::eq width mismatch");
    return words_ == o.words_;
}

bool Bitvec::ult(const Bitvec& o) const {
    if (o.width_ != width_) throw std::invalid_argument("Bitvec::ult width mismatch");
    for (int i = word_count() - 1; i >= 0; --i) {
        if (words_[i] != o.words_[i]) return words_[i] < o.words_[i];
    }
    return false;
}

bool Bitvec::ule(const Bitvec& o) const { return !o.ult(*this); }

Bitvec Bitvec::slice(int hi, int lo) const {
    if (lo < 0 || hi >= width_ || hi < lo) throw std::out_of_range("Bitvec::slice");
    Bitvec r(hi - lo + 1);
    for (int i = lo; i <= hi; ++i) r.set_bit(i - lo, bit(i));
    return r;
}

Bitvec Bitvec::concat(const Bitvec& hi, const Bitvec& lo) {
    Bitvec r(hi.width_ + lo.width_);
    for (int i = 0; i < lo.width_; ++i) r.set_bit(i, lo.bit(i));
    for (int i = 0; i < hi.width_; ++i) r.set_bit(lo.width_ + i, hi.bit(i));
    return r;
}

Bitvec Bitvec::resize(int new_width) const {
    Bitvec r(new_width);
    const int n = std::min(width_, new_width);
    for (int i = 0; i < n; ++i) r.set_bit(i, bit(i));
    return r;
}

std::size_t Bitvec::hash() const {
    std::size_t h = static_cast<std::size_t>(width_) * 0x9e3779b97f4a7c15ull;
    for (const auto w : words_) {
        h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
}

}  // namespace ndb::util
