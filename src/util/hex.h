// Hex encoding helpers shared by diagnostics, pcap dumps and reports.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ndb::util {

// "deadbeef" (lowercase, no separators).
std::string to_hex(std::span<const std::uint8_t> bytes);

// Accepts optional "0x" prefix, whitespace, ':' and '_' separators.
// Throws std::invalid_argument on odd digit counts or junk characters.
std::vector<std::uint8_t> from_hex(std::string_view text);

// Classic 16-bytes-per-row dump with offsets and ASCII gutter.
std::string hex_dump(std::span<const std::uint8_t> bytes);

}  // namespace ndb::util
