#include "util/diag.h"

namespace ndb::util {

std::string SourceLoc::to_string() const {
    if (!known()) return "<unknown>";
    return std::to_string(line) + ":" + std::to_string(column);
}

std::string Diagnostic::to_string() const {
    const char* sev = "error";
    if (severity == DiagSeverity::warning) sev = "warning";
    if (severity == DiagSeverity::note) sev = "note";
    return loc.to_string() + ": " + sev + ": " + message;
}

void DiagEngine::error(SourceLoc loc, std::string message) {
    diags_.push_back({DiagSeverity::error, loc, std::move(message)});
    ++error_count_;
}

void DiagEngine::warning(SourceLoc loc, std::string message) {
    diags_.push_back({DiagSeverity::warning, loc, std::move(message)});
}

void DiagEngine::note(SourceLoc loc, std::string message) {
    diags_.push_back({DiagSeverity::note, loc, std::move(message)});
}

std::string DiagEngine::report() const {
    std::string s;
    for (const auto& d : diags_) {
        s += d.to_string();
        s += '\n';
    }
    return s;
}

}  // namespace ndb::util
