// Small string helpers used across the project.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ndb::util {

// FNV-1a over the bytes of `text`: the project's stable string fingerprint
// (coverage program salts, soak corpus file names).  Do not change the
// constants -- committed corpus names depend on them.
inline std::uint64_t fnv1a_64(std::string_view text) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::vector<std::string> split(std::string_view text, char sep);
std::string_view trim(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix);

// Strict unsigned decimal parse: digits only, whole string, overflow
// rejected.  Shared by recipe decoding and CLI flag validation -- anywhere
// a half-parsed number would silently become a *different* number.
bool parse_u64(std::string_view text, std::uint64_t& out);

// Strict double parse: the whole string must be consumed and the result
// finite.  For CLI flags where strtod's silent 0.0-on-garbage is a trap.
bool parse_double(std::string_view text, double& out);

// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Left-pads or truncates `text` to exactly `width` columns (for tables).
std::string pad(std::string_view text, std::size_t width);

}  // namespace ndb::util
