// Small string helpers used across the project.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ndb::util {

std::vector<std::string> split(std::string_view text, char sep);
std::string_view trim(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix);

// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Left-pads or truncates `text` to exactly `width` columns (for tables).
std::string pad(std::string_view text, std::size_t width);

}  // namespace ndb::util
