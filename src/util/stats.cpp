#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ndb::util {

void RunningStats::add(double x) {
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

namespace {
int bucket_index(std::uint64_t value) {
    if (value == 0) return 0;
    const int bits = 64 - __builtin_clzll(value);
    return std::min(bits - 1, 62);
}
}  // namespace

void LatencyHistogram::add(std::uint64_t value) {
    ++buckets_[bucket_index(value)];
    ++total_;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

std::uint64_t LatencyHistogram::percentile(double p) const {
    if (total_ == 0) return 0;
    const double target = p / 100.0 * static_cast<double>(total_);
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += buckets_[i];
        if (static_cast<double>(seen) >= target) {
            return i >= 63 ? max_ : (1ull << (i + 1)) - 1;
        }
    }
    return max_;
}

std::string LatencyHistogram::to_string() const {
    std::string s;
    char line[128];
    for (int i = 0; i < kBuckets; ++i) {
        if (buckets_[i] == 0) continue;
        std::snprintf(line, sizeof line, "[%llu, %llu): %llu\n",
                      static_cast<unsigned long long>(i ? 1ull << i : 0),
                      static_cast<unsigned long long>(1ull << (i + 1)),
                      static_cast<unsigned long long>(buckets_[i]));
        s += line;
    }
    return s;
}

double exact_percentile(std::vector<double> samples, double p) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace ndb::util
