// Streaming statistics used by the checker and the performance use-case.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ndb::util {

// Running mean / min / max / count with O(1) updates.
class RunningStats {
public:
    void add(double x);
    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    // Population variance via Welford's algorithm.
    double variance() const { return count_ ? m2_ / static_cast<double>(count_) : 0.0; }
    double stddev() const;

private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

// Log-scaled latency histogram: constant memory, approximate percentiles.
// Buckets are [2^k, 2^{k+1}) over a fixed dynamic range, which is the usual
// trade for a line-rate hardware checker (cannot store every sample).
class LatencyHistogram {
public:
    // Values below 1 land in bucket 0; values above ~2^62 saturate.
    void add(std::uint64_t value);
    std::uint64_t count() const { return total_; }
    // Approximate percentile (p in [0,100]); returns bucket upper bound.
    std::uint64_t percentile(double p) const;
    std::uint64_t max_seen() const { return max_; }
    std::uint64_t min_seen() const { return total_ ? min_ : 0; }
    std::string to_string() const;

private:
    static constexpr int kBuckets = 63;
    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t total_ = 0;
    std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ = 0;
};

// Exact percentile helper for offline analysis (benchmarks, reports).
double exact_percentile(std::vector<double> samples, double p);

}  // namespace ndb::util
