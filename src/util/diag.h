// Source locations and diagnostics for the P4 frontend.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace ndb::util {

struct SourceLoc {
    int line = 0;    // 1-based; 0 means "unknown"
    int column = 0;  // 1-based

    std::string to_string() const;
    bool known() const { return line > 0; }
};

enum class DiagSeverity { note, warning, error };

struct Diagnostic {
    DiagSeverity severity = DiagSeverity::error;
    SourceLoc loc;
    std::string message;

    std::string to_string() const;
};

// Collects diagnostics across a frontend pass; errors are accumulated so a
// single run reports every problem instead of stopping at the first.
class DiagEngine {
public:
    void error(SourceLoc loc, std::string message);
    void warning(SourceLoc loc, std::string message);
    void note(SourceLoc loc, std::string message);

    bool has_errors() const { return error_count_ > 0; }
    int error_count() const { return error_count_; }
    const std::vector<Diagnostic>& all() const { return diags_; }

    // Joins every diagnostic into one report string.
    std::string report() const;

private:
    std::vector<Diagnostic> diags_;
    int error_count_ = 0;
};

// Thrown by frontend entry points when compilation cannot proceed.
class CompileError : public std::runtime_error {
public:
    explicit CompileError(std::string report)
        : std::runtime_error(report) {}
};

}  // namespace ndb::util
