#include "util/hex.h"

#include <cctype>
#include <stdexcept>

namespace ndb::util {

namespace {
const char* kDigits = "0123456789abcdef";
}

std::string to_hex(std::span<const std::uint8_t> bytes) {
    std::string s;
    s.reserve(bytes.size() * 2);
    for (const auto b : bytes) {
        s.push_back(kDigits[b >> 4]);
        s.push_back(kDigits[b & 0xf]);
    }
    return s;
}

std::vector<std::uint8_t> from_hex(std::string_view text) {
    if (text.starts_with("0x") || text.starts_with("0X")) text.remove_prefix(2);
    std::vector<std::uint8_t> out;
    int nibble = -1;
    for (const char c : text) {
        if (std::isspace(static_cast<unsigned char>(c)) || c == ':' || c == '_') {
            continue;
        }
        int d;
        if (c >= '0' && c <= '9') {
            d = c - '0';
        } else if (c >= 'a' && c <= 'f') {
            d = c - 'a' + 10;
        } else if (c >= 'A' && c <= 'F') {
            d = c - 'A' + 10;
        } else {
            throw std::invalid_argument("from_hex: bad character");
        }
        if (nibble < 0) {
            nibble = d;
        } else {
            out.push_back(static_cast<std::uint8_t>((nibble << 4) | d));
            nibble = -1;
        }
    }
    if (nibble >= 0) throw std::invalid_argument("from_hex: odd digit count");
    return out;
}

std::string hex_dump(std::span<const std::uint8_t> bytes) {
    std::string s;
    char offset[16];
    for (std::size_t row = 0; row < bytes.size(); row += 16) {
        std::snprintf(offset, sizeof offset, "%08zx  ", row);
        s += offset;
        for (std::size_t i = 0; i < 16; ++i) {
            if (row + i < bytes.size()) {
                const auto b = bytes[row + i];
                s.push_back(kDigits[b >> 4]);
                s.push_back(kDigits[b & 0xf]);
                s.push_back(' ');
            } else {
                s += "   ";
            }
            if (i == 7) s.push_back(' ');
        }
        s += " |";
        for (std::size_t i = 0; i < 16 && row + i < bytes.size(); ++i) {
            const auto b = bytes[row + i];
            s.push_back(std::isprint(b) ? static_cast<char>(b) : '.');
        }
        s += "|\n";
    }
    return s;
}

}  // namespace ndb::util
