#include "util/logging.h"

#include <cstdio>

namespace ndb::util {

const char* log_level_name(LogLevel level) {
    switch (level) {
        case LogLevel::trace: return "TRACE";
        case LogLevel::debug: return "DEBUG";
        case LogLevel::info: return "INFO";
        case LogLevel::warn: return "WARN";
        case LogLevel::error: return "ERROR";
        case LogLevel::off: return "OFF";
    }
    return "?";
}

Logger& Logger::instance() {
    static Logger logger;
    return logger;
}

Logger::Logger() = default;

void Logger::set_sink(Sink sink) {
    std::shared_ptr<const Sink> next;
    if (sink) next = std::make_shared<const Sink>(std::move(sink));
    const std::lock_guard<std::mutex> lock(sink_mutex_);
    sink_ = std::move(next);
}

void Logger::write(LogLevel level, std::string_view tag, std::string_view msg) {
    std::shared_ptr<const Sink> sink;
    {
        const std::lock_guard<std::mutex> lock(sink_mutex_);
        sink = sink_;
    }
    if (sink) {
        (*sink)(level, tag, msg);
        return;
    }
    std::fprintf(stderr, "[%s] %.*s: %.*s\n", log_level_name(level),
                 static_cast<int>(tag.size()), tag.data(),
                 static_cast<int>(msg.size()), msg.data());
}

}  // namespace ndb::util
