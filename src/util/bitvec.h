// Fixed-width bit-vector value type.
//
// Bitvec is the single runtime value representation shared by the packet
// substrate, the P4 interpreter, the table engines and the symbolic
// bit-blaster.  Widths are arbitrary (bounded only by memory); all
// arithmetic wraps modulo 2^width, matching P4-16 bit<N> semantics.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ndb::util {

class Bitvec {
public:
    // The zero-width vector: identity for concat, used for "no value".
    Bitvec() = default;

    // Zero value of the given width (width >= 0).
    explicit Bitvec(int width);

    // Low 64 bits taken from `value`, truncated to `width`.
    Bitvec(int width, std::uint64_t value);

    // Big-endian byte image, as it appears on the wire.  The value uses the
    // low `width` bits of the byte string; excess high-order bits must be 0.
    static Bitvec from_bytes(std::span<const std::uint8_t> be_bytes, int width);

    // Parses "dead_beef" / "0xdeadbeef" style strings.  Throws
    // std::invalid_argument on junk or overflow of `width`.
    static Bitvec from_hex(std::string_view hex, int width);

    // All-ones value of the given width.
    static Bitvec ones(int width);

    int width() const { return width_; }
    bool empty() const { return width_ == 0; }

    // Low 64 bits of the value (wider values are truncated).
    std::uint64_t to_u64() const;

    // True when the value fits in 64 bits.
    bool fits_u64() const;

    bool bit(int i) const;
    void set_bit(int i, bool v);

    // Big-endian image, ceil(width/8) bytes.
    std::vector<std::uint8_t> to_bytes() const;

    std::string to_hex() const;           // e.g. "0x0a00_0001" without separators
    std::string to_string() const;        // e.g. "32w0x0a000001"

    bool is_zero() const;
    bool is_ones() const;

    // --- arithmetic, all results have this->width() and wrap ---
    Bitvec add(const Bitvec& o) const;
    Bitvec sub(const Bitvec& o) const;
    Bitvec mul(const Bitvec& o) const;
    Bitvec band(const Bitvec& o) const;
    Bitvec bor(const Bitvec& o) const;
    Bitvec bxor(const Bitvec& o) const;
    Bitvec bnot() const;
    Bitvec shl(int amount) const;
    Bitvec lshr(int amount) const;
    Bitvec neg() const;

    // --- comparisons (operands must have equal width) ---
    bool eq(const Bitvec& o) const;
    bool ult(const Bitvec& o) const;
    bool ule(const Bitvec& o) const;
    bool ugt(const Bitvec& o) const { return o.ult(*this); }
    bool uge(const Bitvec& o) const { return o.ule(*this); }

    // Bits [hi..lo] inclusive, P4 slice semantics; result width hi-lo+1.
    Bitvec slice(int hi, int lo) const;

    // `hi` occupies the high-order bits of the result.
    static Bitvec concat(const Bitvec& hi, const Bitvec& lo);

    // Zero-extend or truncate to new_width.
    Bitvec resize(int new_width) const;

    std::size_t hash() const;

    friend bool operator==(const Bitvec& a, const Bitvec& b) {
        return a.width_ == b.width_ && a.words_ == b.words_;
    }
    friend bool operator!=(const Bitvec& a, const Bitvec& b) { return !(a == b); }

private:
    void normalize();  // clears bits above width_
    int word_count() const { return static_cast<int>(words_.size()); }

    int width_ = 0;
    std::vector<std::uint64_t> words_;  // little-endian words
};

struct BitvecHash {
    std::size_t operator()(const Bitvec& v) const { return v.hash(); }
};

}  // namespace ndb::util
