// Fixed-width bit-vector value type.
//
// Bitvec is the single runtime value representation shared by the packet
// substrate, the P4 interpreter, the table engines and the symbolic
// bit-blaster.  Widths are arbitrary (bounded only by memory); all
// arithmetic wraps modulo 2^width, matching P4-16 bit<N> semantics.
//
// Representation: widths <= 64 bits -- virtually every P4 field -- live in
// a single inline word and never touch the heap; wider values own a
// heap-allocated little-endian word array.  The interpreter hot path
// (field reads/writes, arithmetic, comparisons) is therefore
// allocation-free in the common case, and every operation works on whole
// 64-bit words rather than individual bits.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ndb::util {

class Bitvec {
public:
    // The zero-width vector: identity for concat, used for "no value".
    Bitvec() = default;

    // Zero value of the given width (width >= 0).
    explicit Bitvec(int width);

    // Low 64 bits taken from `value`, truncated to `width`.
    Bitvec(int width, std::uint64_t value);

    Bitvec(const Bitvec& o);
    Bitvec(Bitvec&& o) noexcept;
    Bitvec& operator=(const Bitvec& o);
    Bitvec& operator=(Bitvec&& o) noexcept;
    ~Bitvec() {
        if (!is_inline()) delete[] heap_;
    }

    // Big-endian byte image, as it appears on the wire.  The value uses the
    // low `width` bits of the byte string; excess high-order bits must be 0.
    static Bitvec from_bytes(std::span<const std::uint8_t> be_bytes, int width);

    // Parses "dead_beef" / "0xdeadbeef" style strings.  Throws
    // std::invalid_argument on junk or overflow of `width`.
    static Bitvec from_hex(std::string_view hex, int width);

    // All-ones value of the given width.
    static Bitvec ones(int width);

    int width() const { return width_; }
    bool empty() const { return width_ == 0; }

    // Low 64 bits of the value (wider values are truncated).
    std::uint64_t to_u64() const { return words()[0]; }

    // True when the value fits in 64 bits.
    bool fits_u64() const;

    bool bit(int i) const;
    void set_bit(int i, bool v);

    // Zeroes the value in place, keeping width and storage.
    // Hot in per-packet state reset: every header field is re-zeroed before
    // each parse, so this stays inline (one store for inline-width values).
    void zero() {
        std::uint64_t* w = words();
        for (int i = 0; i < word_count(); ++i) w[i] = 0;
    }

    // Big-endian image, ceil(width/8) bytes.
    std::vector<std::uint8_t> to_bytes() const;

    // Writes the big-endian image into `out` (must hold >= ceil(width/8)
    // bytes); returns the byte count.  Allocation-free.
    std::size_t write_bytes(std::span<std::uint8_t> out) const;

    std::string to_hex() const;           // e.g. "0x0a00_0001" without separators
    std::string to_string() const;        // e.g. "32w0x0a000001"

    // Number of hex digits to_hex() renders (always at least one).
    int hex_digit_count() const { return width_ < 4 ? 1 : (width_ + 3) / 4; }

    // Value of to_hex()'s digit `i`, 0 = least significant.  Shared by
    // to_hex() and the streaming digest hasher so the two can never drift.
    int nibble(int i) const {
        const int bit = i * 4;  // 4-aligned: a nibble never straddles words
        if (bit >= width_) return 0;
        return static_cast<int>((words()[bit / 64] >> (bit % 64)) & 0xf);
    }

    bool is_zero() const;
    bool is_ones() const;

    // --- arithmetic, all results have this->width() and wrap ---
    Bitvec add(const Bitvec& o) const;
    Bitvec sub(const Bitvec& o) const;
    Bitvec mul(const Bitvec& o) const;
    Bitvec band(const Bitvec& o) const;
    Bitvec bor(const Bitvec& o) const;
    Bitvec bxor(const Bitvec& o) const;
    Bitvec bnot() const;
    Bitvec shl(int amount) const;
    Bitvec lshr(int amount) const;
    Bitvec neg() const;

    // --- comparisons (operands must have equal width) ---
    bool eq(const Bitvec& o) const;
    bool ult(const Bitvec& o) const;
    bool ule(const Bitvec& o) const;
    bool ugt(const Bitvec& o) const { return o.ult(*this); }
    bool uge(const Bitvec& o) const { return o.ule(*this); }

    // Bits [hi..lo] inclusive, P4 slice semantics; result width hi-lo+1.
    Bitvec slice(int hi, int lo) const;

    // Overwrites bits [hi..lo] with the low hi-lo+1 bits of `v`, in place.
    void set_slice(int hi, int lo, const Bitvec& v);

    // `hi` occupies the high-order bits of the result.
    static Bitvec concat(const Bitvec& hi, const Bitvec& lo);

    // Zero-extend or truncate to new_width.
    Bitvec resize(int new_width) const;

    std::size_t hash() const;

    // Little-endian word image, ceil(width/64) words (one word when width
    // is 0, for uniformity).  The span is invalidated by any mutation.
    std::span<const std::uint64_t> word_span() const {
        return {words(), static_cast<std::size_t>(word_count())};
    }

    friend bool operator==(const Bitvec& a, const Bitvec& b) {
        if (a.width_ != b.width_) return false;
        const std::uint64_t* wa = a.words();
        const std::uint64_t* wb = b.words();
        for (int i = 0; i < a.word_count(); ++i) {
            if (wa[i] != wb[i]) return false;
        }
        return true;
    }
    friend bool operator!=(const Bitvec& a, const Bitvec& b) { return !(a == b); }

private:
    static int words_for(int width) { return width <= 64 ? 1 : (width + 63) / 64; }

    bool is_inline() const { return width_ <= 64; }
    int word_count() const { return words_for(width_); }
    const std::uint64_t* words() const { return is_inline() ? &inline_ : heap_; }
    std::uint64_t* words() { return is_inline() ? &inline_ : heap_; }

    void normalize();  // clears bits above width_

    int width_ = 0;
    union {
        std::uint64_t inline_ = 0;      // width_ <= 64
        std::uint64_t* heap_;           // width_ > 64: words_for(width_) words
    };
};

struct BitvecHash {
    std::size_t operator()(const Bitvec& v) const { return v.hash(); }
};

}  // namespace ndb::util
