// Wire codec: randomized round-trips for every request/response variant,
// adversarial decoding (truncation, bit flips, hostile length fields, wrong
// version), FrameReader resynchronization over a mangled stream, and the
// Response payload-discriminator / unbound-channel regression tests.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "control/channel.h"
#include "control/wire.h"
#include "util/random.h"

namespace {

using namespace ndb;
using namespace ndb::control;

// --- randomized value builders ------------------------------------------------

util::Bitvec random_bitvec(util::Rng& rng, int max_width = 96) {
    const int width = static_cast<int>(rng.next_range(1, max_width));
    util::Bitvec v(width);
    for (int i = 0; i < width; ++i) {
        if (rng.next_bool()) v.set_bit(i, true);
    }
    return v;
}

std::string random_name(util::Rng& rng) {
    static const char* kNames[] = {"acl", "routes", "meter0", "reg", "t"};
    std::string base = kNames[rng.next_below(5)];
    if (rng.next_bool(0.3)) base += std::to_string(rng.next_below(100));
    return base;
}

EntrySpec random_entry(util::Rng& rng) {
    EntrySpec e;
    const std::size_t keys = rng.next_below(4);
    for (std::size_t i = 0; i < keys; ++i) {
        e.key_values.push_back(random_bitvec(rng));
    }
    if (rng.next_bool()) {
        for (std::size_t i = 0; i < keys; ++i) {
            e.key_masks.push_back(random_bitvec(rng));
        }
    }
    e.prefix_len = static_cast<int>(rng.next_range(0, 33)) - 1;
    e.priority = static_cast<int>(rng.next_below(1000));
    e.action = random_name(rng);
    const std::size_t args = rng.next_below(3);
    for (std::size_t i = 0; i < args; ++i) {
        e.action_args.push_back(random_bitvec(rng));
    }
    return e;
}

MeterConfig random_meter(util::Rng& rng) {
    MeterConfig m;
    m.committed_rate_bps = rng.next_double() * 1e9;
    m.committed_burst = rng.next_u64() >> 20;
    m.excess_rate_bps = rng.next_double() * 1e9;
    m.excess_burst = rng.next_u64() >> 20;
    return m;
}

ConfigOp random_config_op(util::Rng& rng) {
    ConfigOp op;
    op.target = random_name(rng);
    switch (rng.next_below(4)) {
        case 0:
            op.kind = ConfigOp::Kind::add_entry;
            op.entry = random_entry(rng);
            break;
        case 1: {
            op.kind = ConfigOp::Kind::set_default_action;
            op.action = random_name(rng);
            const std::size_t args = rng.next_below(3);
            for (std::size_t i = 0; i < args; ++i) {
                op.action_args.push_back(random_bitvec(rng));
            }
            break;
        }
        case 2:
            op.kind = ConfigOp::Kind::write_register;
            op.index = rng.next_below(64);
            op.value = random_bitvec(rng);
            break;
        default:
            op.kind = ConfigOp::Kind::configure_meter;
            op.index = rng.next_below(64);
            op.meter = random_meter(rng);
            break;
    }
    return op;
}

Request random_request(util::Rng& rng) {
    switch (rng.next_below(11)) {
        case 0: return AddEntryReq{random_name(rng), random_entry(rng)};
        case 1: return DeleteEntryReq{random_name(rng), random_entry(rng)};
        case 2: {
            SetDefaultReq r;
            r.table = random_name(rng);
            r.action = random_name(rng);
            const std::size_t args = rng.next_below(3);
            for (std::size_t i = 0; i < args; ++i) {
                r.args.push_back(random_bitvec(rng));
            }
            return r;
        }
        case 3: return ClearTableReq{random_name(rng)};
        case 4:
            return WriteRegisterReq{random_name(rng), rng.next_below(64),
                                    random_bitvec(rng)};
        case 5: return ReadRegisterReq{random_name(rng), rng.next_below(64)};
        case 6: return ReadCounterReq{random_name(rng), rng.next_below(64)};
        case 7:
            return ConfigureMeterReq{random_name(rng), rng.next_below(64),
                                     random_meter(rng)};
        case 8: return SnapshotReq{};
        case 9: {
            ApplyConfigReq r;
            const std::size_t ops = rng.next_below(6);
            for (std::size_t i = 0; i < ops; ++i) {
                r.ops.push_back(random_config_op(rng));
            }
            return r;
        }
        default: return ResetReq{};
    }
}

StatusSnapshot random_snapshot(util::Rng& rng) {
    StatusSnapshot s;
    s.taken_at_ns = rng.next_u64();
    s.stages.parser_in = rng.next_below(1000);
    s.stages.parser_accepted = rng.next_below(1000);
    s.stages.parser_rejected = rng.next_below(1000);
    s.stages.parser_errors = rng.next_below(1000);
    s.stages.ingress_dropped = rng.next_below(1000);
    s.stages.egress_dropped = rng.next_below(1000);
    s.stages.forwarded = rng.next_below(1000);
    s.misdirected = rng.next_below(100);
    const std::size_t ports = rng.next_below(4);
    for (std::size_t i = 0; i < ports; ++i) {
        s.ports.push_back({rng.next_u64(), rng.next_u64(), rng.next_u64(),
                           rng.next_u64()});
    }
    const std::size_t tables = rng.next_below(3);
    for (std::size_t i = 0; i < tables; ++i) {
        s.tables.push_back({random_name(rng), rng.next_below(100),
                            rng.next_below(100), rng.next_below(100),
                            rng.next_below(100)});
    }
    static const char* kKinds[] = {"register", "counter", "meter"};
    const std::size_t externs = rng.next_below(3);
    for (std::size_t i = 0; i < externs; ++i) {
        s.externs.push_back({random_name(rng), kKinds[rng.next_below(3)],
                             rng.next_below(64), rng.next_u64(),
                             rng.next_below(4)});
    }
    return s;
}

// --- equality helpers (the structs carry no operator==) -----------------------

void expect_entry_eq(const EntrySpec& a, const EntrySpec& b) {
    EXPECT_EQ(a.key_values, b.key_values);
    EXPECT_EQ(a.key_masks, b.key_masks);
    EXPECT_EQ(a.prefix_len, b.prefix_len);
    EXPECT_EQ(a.priority, b.priority);
    EXPECT_EQ(a.action, b.action);
    EXPECT_EQ(a.action_args, b.action_args);
}

void expect_request_eq(const Request& a, const Request& b) {
    ASSERT_EQ(a.index(), b.index());
    if (const auto* x = std::get_if<AddEntryReq>(&a)) {
        const auto& y = std::get<AddEntryReq>(b);
        EXPECT_EQ(x->table, y.table);
        expect_entry_eq(x->entry, y.entry);
    } else if (const auto* x2 = std::get_if<DeleteEntryReq>(&a)) {
        const auto& y = std::get<DeleteEntryReq>(b);
        EXPECT_EQ(x2->table, y.table);
        expect_entry_eq(x2->entry, y.entry);
    } else if (const auto* x3 = std::get_if<SetDefaultReq>(&a)) {
        const auto& y = std::get<SetDefaultReq>(b);
        EXPECT_EQ(x3->table, y.table);
        EXPECT_EQ(x3->action, y.action);
        EXPECT_EQ(x3->args, y.args);
    } else if (const auto* x4 = std::get_if<ClearTableReq>(&a)) {
        EXPECT_EQ(x4->table, std::get<ClearTableReq>(b).table);
    } else if (const auto* x5 = std::get_if<WriteRegisterReq>(&a)) {
        const auto& y = std::get<WriteRegisterReq>(b);
        EXPECT_EQ(x5->name, y.name);
        EXPECT_EQ(x5->index, y.index);
        EXPECT_EQ(x5->value, y.value);
    } else if (const auto* x6 = std::get_if<ReadRegisterReq>(&a)) {
        const auto& y = std::get<ReadRegisterReq>(b);
        EXPECT_EQ(x6->name, y.name);
        EXPECT_EQ(x6->index, y.index);
    } else if (const auto* x7 = std::get_if<ReadCounterReq>(&a)) {
        const auto& y = std::get<ReadCounterReq>(b);
        EXPECT_EQ(x7->name, y.name);
        EXPECT_EQ(x7->index, y.index);
    } else if (const auto* x8 = std::get_if<ConfigureMeterReq>(&a)) {
        const auto& y = std::get<ConfigureMeterReq>(b);
        EXPECT_EQ(x8->name, y.name);
        EXPECT_EQ(x8->index, y.index);
        EXPECT_EQ(x8->config.committed_rate_bps, y.config.committed_rate_bps);
        EXPECT_EQ(x8->config.committed_burst, y.config.committed_burst);
        EXPECT_EQ(x8->config.excess_rate_bps, y.config.excess_rate_bps);
        EXPECT_EQ(x8->config.excess_burst, y.config.excess_burst);
    } else if (const auto* x9 = std::get_if<ApplyConfigReq>(&a)) {
        const auto& y = std::get<ApplyConfigReq>(b);
        ASSERT_EQ(x9->ops.size(), y.ops.size());
        for (std::size_t i = 0; i < x9->ops.size(); ++i) {
            const ConfigOp& p = x9->ops[i];
            const ConfigOp& q = y.ops[i];
            ASSERT_EQ(p.kind, q.kind);
            EXPECT_EQ(p.target, q.target);
            switch (p.kind) {
                case ConfigOp::Kind::add_entry:
                    expect_entry_eq(p.entry, q.entry);
                    break;
                case ConfigOp::Kind::set_default_action:
                    EXPECT_EQ(p.action, q.action);
                    EXPECT_EQ(p.action_args, q.action_args);
                    break;
                case ConfigOp::Kind::write_register:
                    EXPECT_EQ(p.index, q.index);
                    EXPECT_EQ(p.value, q.value);
                    break;
                case ConfigOp::Kind::configure_meter:
                    EXPECT_EQ(p.index, q.index);
                    EXPECT_EQ(p.meter.committed_rate_bps, q.meter.committed_rate_bps);
                    EXPECT_EQ(p.meter.committed_burst, q.meter.committed_burst);
                    EXPECT_EQ(p.meter.excess_rate_bps, q.meter.excess_rate_bps);
                    EXPECT_EQ(p.meter.excess_burst, q.meter.excess_burst);
                    break;
            }
        }
    }
}

void expect_snapshot_eq(const StatusSnapshot& a, const StatusSnapshot& b) {
    EXPECT_EQ(a.taken_at_ns, b.taken_at_ns);
    EXPECT_EQ(a.stages.parser_in, b.stages.parser_in);
    EXPECT_EQ(a.stages.parser_accepted, b.stages.parser_accepted);
    EXPECT_EQ(a.stages.parser_rejected, b.stages.parser_rejected);
    EXPECT_EQ(a.stages.parser_errors, b.stages.parser_errors);
    EXPECT_EQ(a.stages.ingress_dropped, b.stages.ingress_dropped);
    EXPECT_EQ(a.stages.egress_dropped, b.stages.egress_dropped);
    EXPECT_EQ(a.stages.forwarded, b.stages.forwarded);
    EXPECT_EQ(a.misdirected, b.misdirected);
    ASSERT_EQ(a.ports.size(), b.ports.size());
    for (std::size_t i = 0; i < a.ports.size(); ++i) {
        EXPECT_EQ(a.ports[i].rx_packets, b.ports[i].rx_packets);
        EXPECT_EQ(a.ports[i].tx_bytes, b.ports[i].tx_bytes);
    }
    ASSERT_EQ(a.tables.size(), b.tables.size());
    for (std::size_t i = 0; i < a.tables.size(); ++i) {
        EXPECT_EQ(a.tables[i].name, b.tables[i].name);
        EXPECT_EQ(a.tables[i].hits, b.tables[i].hits);
        EXPECT_EQ(a.tables[i].misses, b.tables[i].misses);
        EXPECT_EQ(a.tables[i].entries, b.tables[i].entries);
        EXPECT_EQ(a.tables[i].capacity, b.tables[i].capacity);
    }
    ASSERT_EQ(a.externs.size(), b.externs.size());
    for (std::size_t i = 0; i < a.externs.size(); ++i) {
        EXPECT_EQ(a.externs[i].name, b.externs[i].name);
        EXPECT_EQ(a.externs[i].kind, b.externs[i].kind);
        EXPECT_EQ(a.externs[i].cells, b.externs[i].cells);
        EXPECT_EQ(a.externs[i].state_hash, b.externs[i].state_hash);
        EXPECT_EQ(a.externs[i].unconfigured_meters, b.externs[i].unconfigured_meters);
    }
}

// --- round trips --------------------------------------------------------------

TEST(WireCodec, RequestRoundTripRandomized) {
    util::Rng rng(0x51c0'ffeeull);
    for (int iter = 0; iter < 500; ++iter) {
        const Request request = random_request(rng);
        const auto payload = wire::encode_request(request);
        Request back;
        const wire::Decode d = wire::decode_request(payload, back);
        ASSERT_TRUE(d.ok) << d.reason;
        expect_request_eq(request, back);
    }
}

TEST(WireCodec, ResponseRoundTripEveryPayloadKind) {
    util::Rng rng(99);
    for (int iter = 0; iter < 200; ++iter) {
        Response r;
        r.status = rng.next_bool() ? Status::success()
                                   : Status::failure("injected failure #" +
                                                     std::to_string(iter));
        switch (rng.next_below(5)) {
            case 0: r.payload = Response::Payload::none; break;
            case 1:
                r.payload = Response::Payload::register_value;
                r.register_value = random_bitvec(rng);
                break;
            case 2:
                r.payload = Response::Payload::counter_value;
                r.counter_value = {rng.next_u64(), rng.next_u64()};
                break;
            case 3: {
                r.payload = Response::Payload::op_statuses;
                const std::size_t n = rng.next_below(5);
                for (std::size_t i = 0; i < n; ++i) {
                    r.op_statuses.push_back(
                        rng.next_bool() ? Status::success()
                                        : Status::failure("op failed #" +
                                                          std::to_string(i)));
                }
                break;
            }
            default:
                r.payload = Response::Payload::snapshot;
                r.snapshot = random_snapshot(rng);
                break;
        }
        const auto payload = wire::encode_response(r);
        Response back;
        const wire::Decode d = wire::decode_response(payload, back);
        ASSERT_TRUE(d.ok) << d.reason;
        EXPECT_EQ(r.status.ok, back.status.ok);
        EXPECT_EQ(r.status.message, back.status.message);
        ASSERT_EQ(r.payload, back.payload);
        switch (r.payload) {
            case Response::Payload::register_value:
                EXPECT_EQ(r.register_value, back.register_value);
                break;
            case Response::Payload::counter_value:
                EXPECT_EQ(r.counter_value.packets, back.counter_value.packets);
                EXPECT_EQ(r.counter_value.bytes, back.counter_value.bytes);
                break;
            case Response::Payload::snapshot:
                expect_snapshot_eq(r.snapshot, back.snapshot);
                break;
            case Response::Payload::op_statuses:
                ASSERT_EQ(r.op_statuses.size(), back.op_statuses.size());
                for (std::size_t i = 0; i < r.op_statuses.size(); ++i) {
                    EXPECT_EQ(r.op_statuses[i].ok, back.op_statuses[i].ok);
                    EXPECT_EQ(r.op_statuses[i].message,
                              back.op_statuses[i].message);
                }
                break;
            case Response::Payload::none:
                break;
        }
    }
}

TEST(WireCodec, FrameRoundTrip) {
    util::Rng rng(5);
    for (int iter = 0; iter < 100; ++iter) {
        wire::Frame f;
        f.kind = static_cast<wire::FrameKind>(rng.next_range(1, 7));
        f.seq = rng.next_u64();
        f.payload.resize(rng.next_below(300));
        for (auto& b : f.payload) {
            b = static_cast<std::uint8_t>(rng.next_below(256));
        }
        const auto bytes = wire::encode_frame(f);
        wire::Frame back;
        const wire::Decode d = wire::decode_frame(bytes, back);
        ASSERT_TRUE(d.ok) << d.reason;
        EXPECT_EQ(f.kind, back.kind);
        EXPECT_EQ(f.seq, back.seq);
        EXPECT_EQ(f.payload, back.payload);
    }
}

// --- adversarial decoding -----------------------------------------------------

TEST(WireCodec, TruncatedFrameEveryPrefixRejected) {
    wire::Frame f;
    f.kind = wire::FrameKind::control_request;
    f.seq = 42;
    f.payload = {1, 2, 3, 4, 5, 6, 7, 8};
    const auto bytes = wire::encode_frame(f);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        wire::Frame out;
        const wire::Decode d = wire::decode_frame(
            std::span<const std::uint8_t>(bytes.data(), len), out);
        EXPECT_FALSE(d.ok) << "prefix of " << len << " bytes decoded";
        EXPECT_FALSE(d.reason.empty());
    }
}

TEST(WireCodec, EveryBitFlipIsDetected) {
    wire::Frame f;
    f.kind = wire::FrameKind::control_response;
    f.seq = 7;
    f.payload = {0xde, 0xad, 0xbe, 0xef};
    const auto clean = wire::encode_frame(f);
    for (std::size_t byte = 0; byte < clean.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            auto mangled = clean;
            mangled[byte] ^= static_cast<std::uint8_t>(1u << bit);
            wire::Frame out;
            const wire::Decode d = wire::decode_frame(mangled, out);
            EXPECT_FALSE(d.ok)
                << "flip of byte " << byte << " bit " << bit << " undetected";
        }
    }
}

TEST(WireCodec, HostileHeaderFieldsRejected) {
    wire::Frame f;
    f.kind = wire::FrameKind::job;
    f.seq = 1;
    f.payload = {9, 9, 9};
    const auto clean = wire::encode_frame(f);
    wire::Frame out;

    auto wrong_version = clean;
    wrong_version[4] = wire::kVersion + 1;
    wire::Decode d = wire::decode_frame(wrong_version, out);
    EXPECT_FALSE(d.ok);
    EXPECT_NE(d.reason.find("version"), std::string::npos) << d.reason;

    auto wrong_kind = clean;
    wrong_kind[5] = 0;  // below the FrameKind range
    d = wire::decode_frame(wrong_kind, out);
    EXPECT_FALSE(d.ok);

    auto wrong_magic = clean;
    wrong_magic[0] ^= 0xff;
    d = wire::decode_frame(wrong_magic, out);
    EXPECT_FALSE(d.ok);
    EXPECT_NE(d.reason.find("magic"), std::string::npos) << d.reason;

    // A length field claiming more than kMaxPayloadBytes must be rejected
    // before any allocation is attempted.
    auto oversized = clean;
    oversized[14] = 0xff;
    oversized[15] = 0xff;
    oversized[16] = 0xff;
    oversized[17] = 0x7f;
    d = wire::decode_frame(oversized, out);
    EXPECT_FALSE(d.ok);

    auto trailing = clean;
    trailing.push_back(0x00);
    d = wire::decode_frame(trailing, out);
    EXPECT_FALSE(d.ok);
    EXPECT_NE(d.reason.find("trailing"), std::string::npos) << d.reason;
}

TEST(WireCodec, RequestDecoderSurvivesTruncationAndGarbage) {
    util::Rng rng(1234);
    for (int iter = 0; iter < 100; ++iter) {
        const Request request = random_request(rng);
        const auto payload = wire::encode_request(request);
        // Every strict prefix must fail cleanly (never crash, never succeed:
        // the decoder requires full consumption).
        for (std::size_t len = 0; len < payload.size(); ++len) {
            Request out;
            const wire::Decode d = wire::decode_request(
                std::span<const std::uint8_t>(payload.data(), len), out);
            EXPECT_FALSE(d.ok);
            EXPECT_FALSE(d.reason.empty());
        }
        // Pure noise payloads must be rejected or decode to *something*
        // without crashing; under ASan/UBSan this doubles as a memory test.
        std::vector<std::uint8_t> noise(rng.next_below(64));
        for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_below(256));
        Request out;
        (void)wire::decode_request(noise, out);
    }
}

TEST(WireCodec, BitvecWithDirtyExcessBitsRejected) {
    // width=4 packed into one byte: the top 4 bits must be zero on the
    // wire; a dirty image must fail the decode, not throw out of
    // Bitvec::from_bytes.
    wire::Writer w;
    w.i32(4);       // width 4
    w.u8(0xf7);     // excess high bits set
    const std::vector<std::uint8_t> payload = w.take();
    wire::Reader r(payload);
    util::Bitvec v;
    EXPECT_FALSE(r.bitvec(v));
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.error().empty());
}

// --- FrameReader resynchronization --------------------------------------------

TEST(FrameReader, ExtractsFramesAcrossGarbageAndSplitFeeds) {
    util::Rng rng(777);
    std::vector<wire::Frame> sent;
    std::vector<std::uint8_t> stream;
    const auto junk = [&](std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
            stream.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
        }
    };
    junk(17);
    for (int i = 0; i < 20; ++i) {
        wire::Frame f;
        f.kind = wire::FrameKind::heartbeat;
        f.seq = static_cast<std::uint64_t>(i);
        f.payload.resize(rng.next_below(40));
        for (auto& b : f.payload) {
            b = static_cast<std::uint8_t>(rng.next_below(256));
        }
        const auto bytes = wire::encode_frame(f);
        stream.insert(stream.end(), bytes.begin(), bytes.end());
        sent.push_back(std::move(f));
        if (rng.next_bool(0.4)) junk(rng.next_below(30));
    }

    // Feed in random-sized chunks so frames straddle feed() boundaries.
    wire::FrameReader reader;
    std::vector<wire::Frame> got;
    std::size_t pos = 0;
    while (pos < stream.size()) {
        const std::size_t n =
            std::min<std::size_t>(1 + rng.next_below(13), stream.size() - pos);
        reader.feed(std::span<const std::uint8_t>(stream.data() + pos, n));
        pos += n;
        wire::Frame f;
        while (reader.next(f)) got.push_back(f);
    }

    // Random junk can eat a following frame (it may contain a partial fake
    // header that swallows real bytes), but most frames must survive and
    // every extracted frame must be one we sent, in order.
    ASSERT_GE(got.size(), sent.size() / 2);
    std::size_t cursor = 0;
    for (const auto& f : got) {
        while (cursor < sent.size() && sent[cursor].seq != f.seq) ++cursor;
        ASSERT_LT(cursor, sent.size()) << "reader invented a frame";
        EXPECT_EQ(sent[cursor].payload, f.payload);
        ++cursor;
    }
    EXPECT_GT(reader.stats().frames, 0u);
    EXPECT_GT(reader.stats().bytes_skipped, 0u);
}

TEST(FrameReader, CorruptFrameDoesNotPoisonSuccessors) {
    wire::Frame a;
    a.kind = wire::FrameKind::job;
    a.seq = 1;
    a.payload = {1, 1, 1};
    wire::Frame b = a;
    b.seq = 2;
    auto bytes_a = wire::encode_frame(a);
    const auto bytes_b = wire::encode_frame(b);
    bytes_a[wire::kHeaderBytes] ^= 0x40;  // corrupt a's payload

    wire::FrameReader reader;
    reader.feed(bytes_a);
    reader.feed(bytes_b);
    wire::Frame out;
    ASSERT_TRUE(reader.next(out));
    EXPECT_EQ(out.seq, 2u);
    EXPECT_FALSE(reader.next(out));
    EXPECT_EQ(reader.stats().corrupt_frames, 1u);
    EXPECT_FALSE(reader.stats().last_error.empty());
}

// --- channel regressions ------------------------------------------------------

TEST(Channel, TransactOnUnboundChannelFailsCleanly) {
    // Regression: transact() on a channel nobody bind()-ed must return a
    // failure Status, not call an empty std::function.
    Channel ch;
    const Response r = ch.transact(SnapshotReq{});
    EXPECT_FALSE(r.status.ok);
    EXPECT_NE(r.status.message.find("not bound"), std::string::npos)
        << r.status.message;
    EXPECT_EQ(r.payload, Response::Payload::none);
}

TEST(Channel, PayloadDiscriminatorMismatchIsAProtocolError) {
    // A handler that answers a register read with the wrong payload kind:
    // the typed client must surface a protocol error, not hand back a
    // default-constructed Bitvec.
    Channel ch;
    ch.bind([](const Request&) {
        Response r;
        r.payload = Response::Payload::counter_value;
        r.counter_value = {5, 5};
        return r;
    });
    RuntimeClient client(ch);
    util::Bitvec out;
    const Status st = client.read_register("reg", 0, out);
    EXPECT_FALSE(st.ok);
    EXPECT_NE(st.message.find("payload"), std::string::npos) << st.message;
}

}  // namespace
