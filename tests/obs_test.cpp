// Telemetry subsystem: histogram math against a naive reference, the
// deterministic sharded merge, the observe-only contract (campaign reports
// byte-identical with telemetry on or off, on both engines), trace JSON
// well-formedness, and the fabric delta codec.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace {

using namespace ndb;

// Every obs test leaves the process-global telemetry the way it found it:
// disabled and zeroed.
struct TelemetryGuard {
    ~TelemetryGuard() {
        obs::Telemetry::set_enabled(false, false);
        obs::Telemetry::reset();
    }
};

// The naive reference for hist_bucket: count how many shifts empty the
// value (i.e. its bit width), the long way.
int naive_bucket(std::uint64_t v) {
    int width = 0;
    while (v != 0) {
        ++width;
        v >>= 1;
    }
    return width < obs::kHistBuckets ? width : obs::kHistBuckets - 1;
}

TEST(Histogram, BucketMathMatchesNaiveReference) {
    EXPECT_EQ(obs::hist_bucket(0), 0);
    for (std::uint64_t v :
         {1ull, 2ull, 3ull, 4ull, 7ull, 8ull, 255ull, 256ull, 1023ull,
          (1ull << 31), (1ull << 31) + 1, (1ull << 62), ~0ull}) {
        EXPECT_EQ(obs::hist_bucket(v), naive_bucket(v)) << "value " << v;
    }
    // Exhaustive near every power-of-two boundary.
    for (int b = 1; b < 63; ++b) {
        const std::uint64_t lo = 1ull << (b - 1);
        EXPECT_EQ(obs::hist_bucket(lo), b);
        EXPECT_EQ(obs::hist_bucket(lo + (lo >> 1)), b);
        EXPECT_EQ(obs::hist_bucket((lo << 1) - 1), b);
    }
    // Upper bounds: inclusive, saturating at the top.
    EXPECT_EQ(obs::hist_bucket_upper(0), 0u);
    EXPECT_EQ(obs::hist_bucket_upper(1), 1u);
    EXPECT_EQ(obs::hist_bucket_upper(10), 1023u);
    EXPECT_EQ(obs::hist_bucket_upper(obs::kHistBuckets - 1), ~0ull);
}

TEST(Histogram, PercentileMatchesNaiveCumulativeWalk) {
    obs::HistogramData h;
    const std::vector<std::uint64_t> values = {0,  1,   1,   5,    9,   17,
                                               90, 100, 900, 1000, 5000};
    for (const std::uint64_t v : values) ++h.buckets[obs::hist_bucket(v)];
    EXPECT_EQ(h.count(), values.size());

    for (const double p : {1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
        // Naive: rank = ceil(p/100 * n) clamped to >= 1, walk the sorted
        // bucket upper bounds.
        const std::uint64_t rank = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   std::ceil(p / 100.0 * static_cast<double>(values.size()))));
        std::uint64_t seen = 0;
        std::uint64_t expect = 0;
        for (int b = 0; b < obs::kHistBuckets; ++b) {
            seen += h.buckets[b];
            if (seen >= rank) {
                expect = obs::hist_bucket_upper(b);
                break;
            }
        }
        EXPECT_EQ(h.percentile(p), expect) << "percentile " << p;
    }
    EXPECT_EQ(obs::HistogramData{}.percentile(50.0), 0u);
}

TEST(Histogram, AddSubtractRoundTripIsExact) {
    obs::HistogramData a, b;
    for (std::uint64_t v = 0; v < 2000; v += 7) ++a.buckets[obs::hist_bucket(v)];
    for (std::uint64_t v = 1; v < 5000; v += 13) {
        ++b.buckets[obs::hist_bucket(v)];
    }
    obs::HistogramData sum = a;
    sum.add(b);
    EXPECT_EQ(sum.count(), a.count() + b.count());
    sum.subtract(b);
    EXPECT_EQ(sum, a);
}

TEST(Metrics, ShardedMergeIsDeterministicAcrossThreadCounts) {
    TelemetryGuard guard;
    obs::Telemetry::set_enabled(true, false);

    // The identical multiset of recordings, once on 1 thread and once
    // sharded over 4: the merged snapshots must compare equal.
    const auto record_range = [](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) {
            obs::count(obs::Counter::packets);
            obs::count(obs::Counter::scenarios, 2);
            obs::record(obs::Hist::packet_ns_compiled, i * 37 % 4096);
        }
    };

    obs::Telemetry::reset();
    record_range(0, 4000);
    const obs::MetricsSnapshot one = obs::Metrics::instance().snapshot();

    obs::Telemetry::reset();
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t) {
        pool.emplace_back(record_range, 1000ull * t, 1000ull * (t + 1));
    }
    for (auto& th : pool) th.join();
    const obs::MetricsSnapshot four = obs::Metrics::instance().snapshot();

    EXPECT_EQ(one.counters[static_cast<std::size_t>(obs::Counter::packets)],
              4000u);
    EXPECT_EQ(one, four);
}

TEST(Metrics, CampaignReportByteIdenticalWithTelemetryOnOrOff) {
    TelemetryGuard guard;
    for (const auto engine :
         {dataplane::Engine::interpreter, dataplane::Engine::compiled}) {
        for (const int threads : {1, 4}) {
            core::CampaignConfig cfg;
            cfg.base_seed = 1;
            cfg.scenarios = 16;
            cfg.threads = threads;
            cfg.engine = engine;

            obs::Telemetry::set_enabled(false, false);
            core::CampaignEngine off(cfg);
            const std::string plain = off.run().to_json();

            obs::Telemetry::set_enabled(true, true);
            obs::Telemetry::reset();
            core::CampaignEngine on(cfg);
            const std::string instrumented = on.run().to_json();

            EXPECT_EQ(plain, instrumented)
                << "engine=" << dataplane::engine_name(engine)
                << " threads=" << threads;
            // And the run actually recorded something.
            const obs::MetricsSnapshot snap = obs::Telemetry::merged_metrics();
            EXPECT_EQ(
                snap.counters[static_cast<std::size_t>(obs::Counter::scenarios)],
                16u);
            EXPECT_GT(
                snap.counters[static_cast<std::size_t>(obs::Counter::packets)],
                0u);
        }
    }
}

// Minimal JSON shape check: balanced braces/brackets outside string
// literals, with escape handling.
void expect_balanced_json(const std::string& doc) {
    int braces = 0;
    int brackets = 0;
    bool in_string = false;
    bool escaped = false;
    for (const char c : doc) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (in_string) {
            if (c == '\\') escaped = true;
            if (c == '"') in_string = false;
            continue;
        }
        switch (c) {
            case '"': in_string = true; break;
            case '{': ++braces; break;
            case '}': --braces; break;
            case '[': ++brackets; break;
            case ']': --brackets; break;
            default: break;
        }
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(Trace, ChromeTraceJsonIsWellFormed) {
    TelemetryGuard guard;
    obs::Telemetry::set_enabled(true, true);
    obs::Telemetry::reset();

    const std::uint64_t t0 = obs::now_ns();
    obs::trace_complete("scenario", t0, 1500, "seed", 7, "findings", 1);
    obs::trace_instant("divergence", "seed", 7, "ordinal", 3);
    obs::trace_complete("round", t0, 90000, "round", 0, "slots", 8);

    const std::string doc = obs::Telemetry::trace_json();
    expect_balanced_json(doc);
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"scenario\""), std::string::npos);
    EXPECT_NE(doc.find("\"divergence\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
    // metrics_json, while here.
    expect_balanced_json(obs::Telemetry::metrics_json());
}

TEST(Telemetry, DeltaCodecRoundTripsAndRejectsTruncation) {
    obs::TelemetryDelta delta;
    delta.pid = 4242;
    delta.metrics.counters[static_cast<std::size_t>(obs::Counter::packets)] = 99;
    delta.metrics.gauges[static_cast<std::size_t>(obs::Gauge::fabric_workers)] =
        -3;
    delta.metrics.hists[static_cast<std::size_t>(obs::Hist::scenario_ns)]
        .buckets[12] = 5;
    obs::TraceEventRecord ev;
    ev.name = "scenario";
    ev.arg0 = "seed";
    ev.v0 = 17;
    ev.arg1 = "findings";
    ev.v1 = 2;
    ev.ts_ns = 1000;
    ev.dur_ns = 250;
    ev.tid = 9;
    delta.events.push_back(ev);

    const std::vector<std::uint8_t> bytes = obs::Telemetry::encode_delta(delta);
    obs::TelemetryDelta out;
    ASSERT_TRUE(obs::Telemetry::decode_delta(bytes, out));
    EXPECT_EQ(out.pid, 4242u);
    EXPECT_EQ(out.metrics, delta.metrics);
    ASSERT_EQ(out.events.size(), 1u);
    EXPECT_EQ(out.events[0].name, "scenario");
    EXPECT_EQ(out.events[0].v0, 17u);
    EXPECT_EQ(out.events[0].dur_ns, 250u);
    // Decoding stamps the shipping process's pid onto each event.
    EXPECT_EQ(out.events[0].pid, 4242u);

    // Any truncation fails whole; so do bad magic and trailing junk.
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        obs::TelemetryDelta scratch;
        const std::vector<std::uint8_t> head(bytes.begin(),
                                             bytes.begin() + cut);
        EXPECT_FALSE(obs::Telemetry::decode_delta(head, scratch))
            << "cut at " << cut;
    }
    std::vector<std::uint8_t> bad = bytes;
    bad[0] ^= 0xff;
    obs::TelemetryDelta scratch;
    EXPECT_FALSE(obs::Telemetry::decode_delta(bad, scratch));
    std::vector<std::uint8_t> padded = bytes;
    padded.push_back(0);
    EXPECT_FALSE(obs::Telemetry::decode_delta(padded, scratch));
}

TEST(Telemetry, TakeDeltaShipsOnceAndImportMerges) {
    TelemetryGuard guard;
    obs::Telemetry::set_enabled(true, true);
    obs::Telemetry::reset();

    obs::count(obs::Counter::wire_requests, 5);
    obs::trace_instant("wire_retry", "seq", 1, "attempt", 1);

    obs::TelemetryDelta first = obs::Telemetry::take_delta();
    EXPECT_EQ(first.metrics.counters[static_cast<std::size_t>(
                  obs::Counter::wire_requests)],
              5u);
    EXPECT_EQ(first.events.size(), 1u);

    // Nothing new happened: the next delta is empty (baseline advanced,
    // events drained exactly once).
    const obs::TelemetryDelta second = obs::Telemetry::take_delta();
    EXPECT_TRUE(second.empty());

    // Importing folds into the merged view on top of local state.  Go
    // through the codec like the fabric does: decode stamps the shipping
    // pid onto every event.
    first.pid = 777;
    obs::TelemetryDelta shipped;
    ASSERT_TRUE(obs::Telemetry::decode_delta(
        obs::Telemetry::encode_delta(first), shipped));
    obs::Telemetry::import_delta(shipped);
    const obs::MetricsSnapshot merged = obs::Telemetry::merged_metrics();
    EXPECT_EQ(merged.counters[static_cast<std::size_t>(
                  obs::Counter::wire_requests)],
              10u);  // 5 local + 5 imported
    bool saw_imported = false;
    for (const auto& e : obs::Telemetry::collect_trace_events()) {
        if (e.pid == 777) saw_imported = true;
    }
    EXPECT_TRUE(saw_imported);
}

TEST(Telemetry, UnwritableOutputPathFailsGracefully) {
    std::string error;
    EXPECT_FALSE(obs::Telemetry::write_file(
        "/nonexistent-ndb-dir/metrics.json", "{}", error));
    EXPECT_FALSE(error.empty());
    error.clear();
    EXPECT_TRUE(
        obs::Telemetry::write_file("/dev/null", "{}\n", error));
    EXPECT_TRUE(error.empty());
}

}  // namespace
