// Stateful network functions at production flow counts.
//
// Four classic NF shapes (NAT, per-flow firewall, maglev-style load
// balancer, learning bridge) run under both execution engines, their
// register/extern state driven through the handle-based runtime API, and
// the state-quirk family (stale_entry, expiry_off_by_one,
// hash_collision_misdirect) is detected, minimized, fingerprinted and
// localized by the campaign with the usual determinism contract: one
// report, byte-identical across thread and process counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/fabric.h"
#include "core/scenario_exec.h"
#include "core/specgen.h"
#include "core/tools.h"
#include "p4/programs.h"
#include "quirk_fixture.h"
#include "target/device.h"
#include "util/bitvec.h"

namespace {

using namespace ndb;
using util::Bitvec;

const std::vector<std::string> kNfPrograms = {
    "nat_gateway", "flow_firewall", "maglev_lb", "learning_bridge"};

// The fabric accounting block is the report's one timing-dependent part;
// byte-identity is asserted on everything else.
std::string json_without_fabric(core::CampaignReport r) {
    r.fabric_enabled = false;
    r.fabric = core::FabricAccounting{};
    return r.to_json();
}

core::CampaignConfig fixture_config(std::uint64_t scenarios) {
    core::CampaignConfig cfg;
    cfg.base_seed = 1;
    cfg.scenarios = scenarios;
    cfg.threads = 1;
    ndb_test::apply_fixture(ndb_test::state_quirk_fixture(), cfg);
    return cfg;
}

// --- engine differential ------------------------------------------------------

TEST(StatefulNf, InterpAndCompiledAgreeOnEveryNfProgram) {
    for (const std::string& prog : kNfPrograms) {
        const core::SpecGenerator gen({prog});
        for (std::uint64_t seed = 1; seed <= 12; ++seed) {
            const core::Scenario sc = gen.make(seed);
            const std::vector<packet::Packet> packets =
                core::scenario_packets(sc);

            auto interp = target::make_device("reference");
            interp->set_engine(dataplane::Engine::interpreter);
            auto compiled = target::make_device("reference");
            compiled->set_engine(dataplane::Engine::compiled);

            const core::DeviceRun a =
                core::run_scenario_on(*interp, sc, packets, 8, nullptr, nullptr);
            const core::DeviceRun b = core::run_scenario_on(*compiled, sc,
                                                            packets, 8, nullptr,
                                                            nullptr);
            const auto div = core::diff_runs(b, a);
            EXPECT_FALSE(div.has_value())
                << prog << " seed " << seed << ": engines diverge ("
                << div->kind << "): " << div->detail;
        }
    }
}

// --- flow state driven through resolved handles -------------------------------

TEST(StatefulNf, HandleApiDrivesNatBindingAndExpiry) {
    auto dev = target::make_device("reference");
    const auto prog =
        core::scenario::compile(p4::programs::nat_gateway(), "nat_gateway");
    ASSERT_TRUE(dev->load(*prog).ok);

    const control::ExternHandle nat_key = dev->resolve_extern("nat_key");
    const control::ExternHandle nat_last = dev->resolve_extern("nat_last");
    ASSERT_TRUE(nat_key.valid());
    ASSERT_TRUE(nat_last.valid());
    EXPECT_FALSE(dev->resolve_extern("no_such_register").valid());

    // First packet of a fresh flow allocates a binding and translates.
    packet::Packet pkt = core::scenario::ipv4_udp_packet();
    pkt.meta.rx_time_ns = 1'000'000;  // now = 1000us
    dev->inject(pkt);
    std::vector<packet::Packet> out = dev->drain_port(2);
    ASSERT_EQ(out.size(), 1u);
    // srcAddr rewritten to the NAT address 192.168.0.1.
    EXPECT_EQ(out[0].data()[26], 0xc0);
    EXPECT_EQ(out[0].data()[27], 0xa8);
    EXPECT_EQ(out[0].data()[28], 0x00);
    EXPECT_EQ(out[0].data()[29], 0x01);

    // Find the flow's bucket by scanning the binding table through the
    // handle-keyed read path.
    const std::uint32_t flow_src = core::scenario::host_ip(1);
    int bucket = -1;
    for (int i = 0; i < 64; ++i) {
        Bitvec cell;
        ASSERT_TRUE(dev->read_register(nat_key, i, cell).ok);
        if (cell.to_u64() == flow_src) bucket = i;
    }
    ASSERT_GE(bucket, 0) << "allocated binding not found in nat_key";

    // Install a competing binding in that bucket: a different flow owns it
    // as of t=2000us.  Ours must now wait out the 64us idle timeout.
    ASSERT_TRUE(dev->write_register(nat_key, bucket, Bitvec(32, 0x0a000063)).ok);
    ASSERT_TRUE(dev->write_register(nat_last, bucket, Bitvec(48, 2000)).ok);

    pkt.meta.rx_time_ns = 2'063'000;  // age 63us: binding still live -> drop
    dev->inject(pkt);
    EXPECT_TRUE(dev->drain_port(2).empty());

    pkt.meta.rx_time_ns = 2'064'000;  // age 64us: expired -> steal + translate
    dev->inject(pkt);
    out = dev->drain_port(2);
    ASSERT_EQ(out.size(), 1u);
    Bitvec stolen;
    ASSERT_TRUE(dev->read_register(nat_key, bucket, stolen).ok);
    EXPECT_EQ(stolen.to_u64(), flow_src);

    // Reloading the image invalidates previously-resolved handles.
    ASSERT_TRUE(dev->load(*prog).ok);
    Bitvec ignored;
    const control::Status stale = dev->read_register(nat_key, bucket, ignored);
    EXPECT_FALSE(stale.ok);
    EXPECT_NE(stale.message.find("stale"), std::string::npos) << stale.message;
}

TEST(StatefulNf, FlowPlansStretchAcrossTheAgingTimeout) {
    const core::SpecGenerator gen({"nat_gateway"});
    const core::Scenario sc = gen.make(7);
    EXPECT_GT(sc.spec.rate_pps, 0.0);
    EXPECT_GE(sc.spec.count, 12u);
    const std::vector<packet::Packet> packets = core::scenario_packets(sc);
    ASSERT_GE(packets.size(), 2u);
    // The slowed timeline must straddle the NAT program's 64us timeout, or
    // the expiry branch would be dead in every scenario.
    EXPECT_GT(packets.back().meta.rx_time_ns - packets.front().meta.rx_time_ns,
              64'000u);
}

// --- state-quirk matrix -------------------------------------------------------

TEST(StatefulNf, CampaignFindsAllThreeStateQuirkFingerprints) {
    const ndb_test::FlagFixture fx = ndb_test::state_quirk_fixture();
    core::CampaignConfig cfg = fixture_config(96);
    core::CampaignEngine engine(cfg);
    const core::CampaignReport report = engine.run();

    const std::uint64_t budget = ndb_test::budget_to_all_seven(report, fx);
    EXPECT_GT(budget, 0u) << "not every state quirk produced a fingerprint\n"
                          << report.to_string();
    EXPECT_LE(budget, cfg.scenarios);

    bool saw_state_kind = false;
    for (const auto& d : report.divergences) {
        if (d.kind == "state") saw_state_kind = true;
        EXPECT_TRUE(d.minimized_reproduces) << d.fingerprint;
        EXPECT_FALSE(d.fingerprint.empty());
    }
    EXPECT_TRUE(saw_state_kind)
        << "state-quirk sweep produced no state-class divergence\n"
        << report.to_string();
}

TEST(StatefulNf, ReportByteIdenticalAcrossThreadCounts) {
    core::CampaignConfig cfg = fixture_config(48);
    core::CampaignEngine one(cfg);
    const std::string a = one.run().to_json();

    cfg.threads = 4;
    core::CampaignEngine four(cfg);
    EXPECT_EQ(a, four.run().to_json());
}

TEST(StatefulNf, FabricReportMatchesInProcessRun) {
    const core::CampaignConfig cfg = fixture_config(24);
    core::CampaignEngine solo(cfg);
    const core::CampaignReport a = solo.run();

    core::FabricConfig f;
    f.campaign = cfg;
    f.workers = 3;
    f.shard_size = 4;
    core::FabricEngine fabric(f);
    const core::CampaignReport b = fabric.run();

    EXPECT_TRUE(b.fabric_enabled);
    EXPECT_EQ(b.fabric.workers, 3u);
    EXPECT_EQ(a.to_json(), json_without_fabric(b));
}

}  // namespace
