// CampaignEngine contract tests: determinism under sharding, dedup,
// minimization, and registry-driven backend sweeps.
#include <gtest/gtest.h>

#include "core/campaign.h"
#include "core/specgen.h"
#include "target/device.h"

namespace {

using namespace ndb;

core::CampaignConfig default_config(std::uint64_t scenarios, int threads) {
    core::CampaignConfig config;
    config.base_seed = 7;
    config.scenarios = scenarios;
    config.threads = threads;
    // Pin the DUT list: other tests may grow the process-global registry.
    config.duts = {core::BackendSpec{"sdnet", std::nullopt, "sdnet"}};
    return config;
}

TEST(CampaignEngine, SameSeedSameReportRegardlessOfThreadCount) {
    // The whole point of deterministic sharding: a campaign is a pure
    // function of its config.  Byte-identical JSON, 1 vs 4 workers.
    core::CampaignEngine one(default_config(48, 1));
    core::CampaignEngine four(default_config(48, 4));
    const core::CampaignReport r1 = one.run();
    const core::CampaignReport r4 = four.run();
    EXPECT_GT(r1.packets_injected, 0u);
    EXPECT_FALSE(r1.divergences.empty());
    EXPECT_EQ(r1.to_json(), r4.to_json());
}

TEST(CampaignEngine, DedupCollapsesRepeatedFindings) {
    // The sdnet catalogue trips on many seeds, but the (backend, signature,
    // stage) fingerprint folds them into a handful of records.
    core::CampaignEngine engine(default_config(64, 2));
    const core::CampaignReport report = engine.run();
    ASSERT_FALSE(report.divergences.empty());
    EXPECT_GT(report.findings_total, report.divergences.size());
    EXPECT_GT(report.dedup_ratio(), 1.0);
    std::uint64_t duplicates = 0;
    for (const auto& d : report.divergences) duplicates += d.duplicates;
    EXPECT_EQ(report.findings_total,
              report.divergences.size() + duplicates);
}

TEST(CampaignEngine, MinimizedSeedStillReproduces) {
    core::CampaignEngine engine(default_config(48, 2));
    const core::CampaignReport report = engine.run();
    ASSERT_FALSE(report.divergences.empty());
    for (const auto& d : report.divergences) {
        EXPECT_TRUE(d.minimized_reproduces) << d.fingerprint;
        EXPECT_GE(d.minimized_count, 1u) << d.fingerprint;
        EXPECT_LE(d.minimized_count, 12u) << d.fingerprint;  // spec.count cap
    }
}

TEST(CampaignEngine, ReportCarriesThroughputInputsAndStats) {
    core::CampaignEngine engine(default_config(16, 1));
    const core::CampaignReport report = engine.run();
    EXPECT_EQ(report.base_seed, 7u);
    EXPECT_EQ(report.scenarios, 16u);
    EXPECT_EQ(report.backends, std::vector<std::string>{"sdnet"});
    EXPECT_EQ(report.programs, core::SpecGenerator::default_programs());
    EXPECT_GT(report.packets_injected, 16u * 4u);  // >= count per scenario, x2 devices
    EXPECT_GT(engine.stats().scenarios_per_sec, 0.0);
    EXPECT_GT(engine.stats().packets_per_sec, 0.0);
    // The deterministic report never embeds wall-clock numbers.
    EXPECT_EQ(report.to_json().find("per_sec"), std::string::npos);
}

TEST(CampaignEngine, ScenariosAreAPureFunctionOfTheSeed) {
    const core::SpecGenerator gen;
    for (const std::uint64_t seed : {1ull, 17ull, 923ull}) {
        const core::Scenario a = gen.make(seed);
        const core::Scenario b = gen.make(seed);
        EXPECT_EQ(a.program, b.program);
        EXPECT_EQ(a.spec.count, b.spec.count);
        EXPECT_EQ(a.config.size(), b.config.size());
        for (std::uint64_t seq = 1; seq <= a.spec.count; ++seq) {
            EXPECT_TRUE(core::instantiate(a.spec.tmpl, seq)
                            .same_bytes(core::instantiate(b.spec.tmpl, seq)));
        }
    }
}

TEST(CampaignEngine, UnknownProgramOrBackendIsAnError) {
    EXPECT_THROW(core::SpecGenerator({"no_such_program"}), std::invalid_argument);
    core::CampaignConfig config = default_config(1, 1);
    config.duts = {core::BackendSpec{"no_such_backend", std::nullopt, ""}};
    core::CampaignEngine engine(config);
    EXPECT_THROW(engine.run(), std::invalid_argument);
}

TEST(CampaignEngine, RegisteredBackendsJoinTheSweepByDefault) {
    // Third-party backends become DUTs without touching the engine: an
    // empty dut list sweeps everything in the registry but the reference.
    target::register_backend(
        "shifty_sim", [](std::optional<dataplane::Quirks> quirks) {
            target::DeviceConfig cfg;
            cfg.backend = "shifty_sim";
            if (quirks) {
                cfg.quirks = *quirks;
            } else {
                cfg.quirks.shift_miscompile = true;
            }
            return target::make_reference_device(std::move(cfg));
        });

    core::CampaignConfig config;
    config.base_seed = 7;
    config.scenarios = 12;
    config.threads = 2;
    config.programs = {"shift_mangler"};
    core::CampaignEngine engine(config);
    const core::CampaignReport report = engine.run();

    EXPECT_NE(std::find(report.backends.begin(), report.backends.end(),
                        "shifty_sim"),
              report.backends.end());
    bool found = false;
    for (const auto& d : report.divergences) {
        if (d.backend == "shifty_sim") {
            found = true;
            EXPECT_NE(d.quirk_signature.find("shift_miscompile"),
                      std::string::npos);
        }
    }
    EXPECT_TRUE(found) << report.to_string();
}

}  // namespace
