// Faultable transports + resilient wire client: FaultPlan parsing, clean
// loopback equivalence with direct dispatch, retry/dedup behaviour under
// injected faults, deterministic channel accounting, and the FdTransport
// byte-stream path the fabric runs on.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "control/transport.h"
#include "control/wire.h"
#include "core/tools.h"
#include "p4/compiler.h"
#include "p4/programs.h"
#include "target/device.h"

namespace {

using namespace ndb;
using namespace ndb::control;

std::unique_ptr<target::Device> make_loaded_device() {
    auto dev = target::make_reference_device();
    const auto prog = p4::compile_source(p4::programs::l2_switch(), "l2_switch");
    if (!dev->load(*prog)) throw std::runtime_error("l2_switch load failed");
    return dev;
}

// A host-side client reaching the device through the wire protocol, the
// way a fabric worker's management plane does.
struct WireRig {
    std::unique_ptr<target::Device> device = make_loaded_device();
    LoopbackTransport transport{device->runtime()};
    WireChannel channel{transport};
    RuntimeClient client{channel};
};

// --- fault plan parsing -------------------------------------------------------

TEST(FaultPlan, ParsesFullSpecAndRendersItBack) {
    const FaultPlan p = FaultPlan::parse(
        "seed=7,drop=0.1,dup=0.05,reorder=0.1,truncate=0.02,corrupt=0.02,"
        "delay=0.2,delay_ticks=3");
    EXPECT_EQ(p.seed, 7u);
    EXPECT_DOUBLE_EQ(p.drop, 0.1);
    EXPECT_DOUBLE_EQ(p.duplicate, 0.05);
    EXPECT_DOUBLE_EQ(p.reorder, 0.1);
    EXPECT_DOUBLE_EQ(p.truncate, 0.02);
    EXPECT_DOUBLE_EQ(p.corrupt, 0.02);
    EXPECT_DOUBLE_EQ(p.delay, 0.2);
    EXPECT_EQ(p.delay_ticks, 3u);
    EXPECT_TRUE(p.enabled());
    // spec() -> parse() must round-trip.
    const FaultPlan back = FaultPlan::parse(p.spec());
    EXPECT_EQ(back.spec(), p.spec());
}

TEST(FaultPlan, CleanSpecsAndJunkSpecs) {
    EXPECT_FALSE(FaultPlan::parse("").enabled());
    EXPECT_FALSE(FaultPlan::parse("none").enabled());
    EXPECT_THROW(FaultPlan::parse("drop"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("drop=1.5"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("drop=-0.1"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("drop=abc"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("warp=0.5"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("delay_ticks=0"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("seed="), std::invalid_argument);
}

// --- clean loopback == direct dispatch ----------------------------------------

TEST(WireChannelLoopback, CleanChannelMatchesDirectDispatch) {
    auto direct_dev = make_loaded_device();
    WireRig rig;

    for (int i = 0; i < 8; ++i) {
        const Status a = core::scenario::add_l2_entry(
            *direct_dev, core::scenario::host_mac(i), i % 4);
        const Status b = core::scenario::add_l2_entry(
            rig.client, core::scenario::host_mac(i), i % 4);
        EXPECT_EQ(a.ok, b.ok) << i;
        EXPECT_EQ(a.message, b.message) << i;
    }
    EXPECT_EQ(direct_dev->snapshot().to_string(),
              rig.client.snapshot().to_string());

    EXPECT_EQ(rig.channel.stats().requests, 9u);  // 8 adds + snapshot
    EXPECT_EQ(rig.channel.stats().retries, 0u);
    EXPECT_EQ(rig.channel.stats().timeouts, 0u);
    EXPECT_EQ(rig.transport.faults_injected(), 0u);
}

// --- faults masked by retries -------------------------------------------------

TEST(WireChannelLoopback, LossyLinkMaskedByRetries) {
    WireRig rig;
    rig.transport.set_fault_plan(FaultPlan::parse(
        "seed=3,drop=0.2,dup=0.1,reorder=0.1,corrupt=0.1,delay=0.2"));
    RetryPolicy policy;
    policy.max_attempts = 16;
    policy.timeout_ticks = 8;
    rig.channel.set_retry_policy(policy);

    for (int i = 0; i < 32; ++i) {
        const Status st = core::scenario::add_l2_entry(
            rig.client, core::scenario::host_mac(i), i % 4);
        EXPECT_TRUE(st.ok) << i << ": " << st.message;
    }
    // The plan must actually have bitten, and retries must have healed it.
    EXPECT_GT(rig.transport.faults_injected(), 0u);
    EXPECT_GT(rig.channel.stats().retries, 0u);
    EXPECT_EQ(rig.channel.stats().timeouts, 0u);
}

TEST(WireChannelLoopback, DuplicatedRequestsStayExactlyOnce) {
    // dup=1.0: every frame is delivered twice, so every non-idempotent op
    // reaches the server at least twice.  The dedup cache must keep the
    // device-visible effect exactly-once.
    auto direct_dev = make_loaded_device();
    WireRig rig;
    rig.transport.set_fault_plan(FaultPlan::parse("seed=1,dup=1.0"));

    for (int i = 0; i < 6; ++i) {
        EXPECT_TRUE(core::scenario::add_l2_entry(
                        rig.client, core::scenario::host_mac(i), i % 4)
                        .ok);
        EXPECT_TRUE(core::scenario::add_l2_entry(
                        *direct_dev, core::scenario::host_mac(i), i % 4)
                        .ok);
    }
    EXPECT_GT(rig.transport.server_stats().dedup_hits, 0u);
    // Identical device-visible state: the duplicated AddEntry frames did
    // not program anything twice.
    EXPECT_EQ(rig.device->snapshot().to_string(),
              direct_dev->snapshot().to_string());
}

TEST(WireChannelLoopback, TotalLossTimesOutWithDiagnosticStatus) {
    WireRig rig;
    rig.transport.set_fault_plan(FaultPlan::parse("seed=2,drop=1.0"));
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.timeout_ticks = 4;
    rig.channel.set_retry_policy(policy);

    const Status st =
        core::scenario::add_l2_entry(rig.client, core::scenario::host_mac(1), 1);
    EXPECT_FALSE(st.ok);
    EXPECT_EQ(st.message.rfind("wire:", 0), 0u) << st.message;
    EXPECT_NE(st.message.find("timed out"), std::string::npos) << st.message;
    EXPECT_EQ(rig.channel.stats().timeouts, 1u);
    EXPECT_EQ(rig.channel.stats().frames_sent, 3u);
    EXPECT_EQ(rig.channel.stats().retries, 2u);
}

TEST(WireChannelLoopback, FaultScheduleIsDeterministic) {
    const auto run = [] {
        WireRig rig;
        rig.transport.set_fault_plan(FaultPlan::parse(
            "seed=9,drop=0.2,corrupt=0.2,delay=0.3,delay_ticks=2"));
        RetryPolicy policy;
        policy.max_attempts = 8;
        rig.channel.set_retry_policy(policy);
        for (int i = 0; i < 24; ++i) {
            (void)core::scenario::add_l2_entry(rig.client,
                                               core::scenario::host_mac(i),
                                               i % 4);
        }
        const ChannelStats& s = rig.channel.stats();
        return std::to_string(s.requests) + "/" + std::to_string(s.frames_sent) +
               "/" + std::to_string(s.retries) + "/" +
               std::to_string(s.timeouts) + "/" +
               std::to_string(rig.transport.faults_injected());
    };
    const std::string first = run();
    EXPECT_EQ(first, run());
    EXPECT_EQ(first, run());
}

// --- fd transport -------------------------------------------------------------

TEST(FdTransport, RoundTripOverSocketpair) {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    FdTransport a(sv[0]);
    FdTransport b(sv[1]);

    wire::Frame f;
    f.kind = wire::FrameKind::heartbeat;
    f.seq = 31337;
    f.payload = {1, 2, 3};
    a.send(wire::encode_frame(f));

    wire::FrameReader reader;
    wire::Frame out;
    bool got = false;
    for (int spin = 0; spin < 100 && !got; ++spin) {
        b.tick();
        std::vector<std::uint8_t> rx;
        if (b.receive(rx)) reader.feed(rx);
        got = reader.next(out);
    }
    ASSERT_TRUE(got);
    EXPECT_EQ(out.seq, 31337u);
    EXPECT_EQ(out.payload, f.payload);
    EXPECT_TRUE(a.alive());
    EXPECT_TRUE(b.alive());
}

TEST(FdTransport, PeerCloseIsDetected) {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    FdTransport a(sv[0]);
    {
        FdTransport b(sv[1]);  // destructor closes the peer end
    }
    std::vector<std::uint8_t> rx;
    for (int spin = 0; spin < 100 && a.alive(); ++spin) {
        a.tick();
        (void)a.receive(rx);
    }
    EXPECT_FALSE(a.alive());
}

}  // namespace
