// End-to-end smoke: every sample program compiles, loads on the reference
// device, and a basic packet round-trips.
#include <gtest/gtest.h>

#include "p4/compiler.h"
#include "p4/programs.h"
#include "packet/protocols.h"
#include "target/device.h"

namespace {

using namespace ndb;

TEST(CompilerSmoke, AllSamplesCompile) {
    for (const auto& sample : p4::programs::all_samples()) {
        SCOPED_TRACE(sample.name);
        std::unique_ptr<p4::ir::Program> prog;
        ASSERT_NO_THROW(prog = p4::compile_source(sample.source, sample.name))
            << sample.name;
        ASSERT_NE(prog, nullptr);
        EXPECT_FALSE(prog->parser_states.empty());
        EXPECT_FALSE(prog->deparse_order.empty());
    }
}

TEST(CompilerSmoke, PassthroughForwardsToPortOne) {
    auto prog = p4::compile_source(p4::programs::passthrough(), "passthrough");
    auto device = target::make_reference_device();
    ASSERT_TRUE(device->load(*prog));

    packet::Packet pkt = packet::PacketBuilder()
                             .ethernet(packet::mac_from_string("02:00:00:00:00:02"),
                                       packet::mac_from_string("02:00:00:00:00:01"))
                             .ipv4("10.0.0.1", "10.0.0.2", packet::kIpProtoUdp)
                             .udp(1000, 2000)
                             .payload_size(32)
                             .build();
    pkt.meta.ingress_port = 0;
    device->inject(pkt);

    auto out = device->drain_port(1);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].same_bytes(pkt));
}

TEST(CompilerSmoke, RejectFilterDropsNonIpv4OnReference) {
    auto prog = p4::compile_source(p4::programs::reject_filter(), "reject_filter");
    auto device = target::make_reference_device();
    ASSERT_TRUE(device->load(*prog));

    packet::ArpMessage arp;
    arp.opcode = 1;
    packet::Packet pkt = packet::PacketBuilder()
                             .ethernet(packet::mac_from_string("ff:ff:ff:ff:ff:ff"),
                                       packet::mac_from_string("02:00:00:00:00:01"))
                             .arp(arp)
                             .build();
    pkt.meta.ingress_port = 0;
    device->inject(pkt);
    EXPECT_EQ(device->drain_port(1).size(), 0u);

    auto snap = device->snapshot();
    EXPECT_EQ(snap.stages.parser_rejected, 1u);
}

TEST(CompilerSmoke, RejectFilterForwardsNonIpv4OnSdnet) {
    // The paper's bug: the SDNet-like target has no reject state.
    auto prog = p4::compile_source(p4::programs::reject_filter(), "reject_filter");
    auto device = target::make_sdnet_device();
    ASSERT_TRUE(device->load(*prog));

    packet::ArpMessage arp;
    packet::Packet pkt = packet::PacketBuilder()
                             .ethernet(packet::mac_from_string("ff:ff:ff:ff:ff:ff"),
                                       packet::mac_from_string("02:00:00:00:00:01"))
                             .arp(arp)
                             .build();
    pkt.meta.ingress_port = 0;
    device->inject(pkt);
    EXPECT_EQ(device->drain_port(1).size(), 1u);  // wrongly forwarded
}

}  // namespace
