// Crash-tolerant multi-process fabric: the report must come out
// byte-identical to the single-process uniform sweep -- with clean links,
// with a SIGKILLed worker plus lossy fault-injected links (graceful
// degradation), and with management-plane fault injection layered on top.
#include <gtest/gtest.h>

#include <unistd.h>

#include <set>
#include <stdexcept>
#include <string>

#include "core/campaign.h"
#include "core/fabric.h"
#include "obs/telemetry.h"

namespace {

using namespace ndb;
using namespace ndb::core;

CampaignConfig base_config() {
    CampaignConfig c;
    c.base_seed = 1;
    c.scenarios = 24;
    c.threads = 1;
    return c;
}

// The fabric accounting block is the report's one timing-dependent part
// (which worker dies with which shard in flight is the OS scheduler's
// call); byte-identity is asserted on everything else.
std::string json_without_fabric(CampaignReport r) {
    r.fabric_enabled = false;
    r.fabric = FabricAccounting{};
    return r.to_json();
}

TEST(Fabric, CleanRunByteIdenticalToSingleProcess) {
    const CampaignConfig cfg = base_config();

    CampaignEngine single(cfg);
    const CampaignReport a = single.run();

    FabricConfig f;
    f.campaign = cfg;
    f.workers = 3;
    f.shard_size = 4;
    FabricEngine fabric(f);
    const CampaignReport b = fabric.run();

    EXPECT_TRUE(b.fabric_enabled);
    EXPECT_EQ(b.fabric.workers, 3u);
    EXPECT_EQ(b.fabric.worker_restarts, 0u);
    EXPECT_GT(b.fabric.link_frames, 0u);
    EXPECT_EQ(a.to_json(), json_without_fabric(b));
}

TEST(Fabric, SurvivesWorkerKillAndLossyLinks) {
    const CampaignConfig cfg = base_config();

    CampaignEngine single(cfg);
    const CampaignReport a = single.run();

    // One worker is SIGKILLed mid-campaign AND every parent<->worker link
    // drops/duplicates/reorders/corrupts/delays frames: the sweep must
    // still complete with the identical report, the damage visible only in
    // the accounting.
    FabricConfig f;
    f.campaign = cfg;
    f.workers = 3;
    f.shard_size = 2;
    f.link_fault_plan =
        "seed=5,drop=0.15,dup=0.1,reorder=0.1,corrupt=0.1,delay=0.2,"
        "delay_ticks=2";
    f.kill_worker_after_results = 2;
    FabricEngine fabric(f);
    const CampaignReport b = fabric.run();

    EXPECT_GE(b.fabric.worker_restarts, 1u);
    EXPECT_GT(b.fabric.link_faults, 0u);
    EXPECT_EQ(a.to_json(), json_without_fabric(b));
}

TEST(Fabric, MgmtFaultInjectionStaysDeterministicAcrossProcessCounts) {
    // A harsh management plan makes some DUT config ops exhaust their retry
    // budget -- a "mgmt" divergence class the data path cannot produce.
    // The schedule is a pure function of (plan seed, program, scenario
    // seed, DUT index), so every execution topology must report the same
    // findings and the same mgmt accounting.
    CampaignConfig cfg = base_config();
    cfg.scenarios = 16;
    cfg.mgmt_fault_plan = "seed=11,drop=0.7";

    CampaignEngine single(cfg);
    const CampaignReport a = single.run();

    CampaignConfig threaded = cfg;
    threaded.threads = 2;
    CampaignEngine multi(threaded);
    const CampaignReport a2 = multi.run();
    EXPECT_EQ(a.to_json(), a2.to_json());

    FabricConfig f;
    f.campaign = cfg;
    f.workers = 2;
    f.shard_size = 4;
    FabricEngine fabric(f);
    const CampaignReport b = fabric.run();

    EXPECT_TRUE(a.mgmt_enabled);
    EXPECT_GT(a.mgmt.retries, 0u);
    EXPECT_GT(a.mgmt.timeouts, 0u);
    EXPECT_GT(a.mgmt.faults_injected, 0u);
    bool saw_mgmt_kind = false;
    for (const auto& d : a.divergences) {
        if (d.kind == "mgmt") saw_mgmt_kind = true;
    }
    EXPECT_TRUE(saw_mgmt_kind)
        << "harsh mgmt plan produced no mgmt-kind divergence";
    EXPECT_EQ(a.to_json(), json_without_fabric(b));
}

TEST(Fabric, TelemetryDeltasMergeAcrossWorkersWithoutTouchingTheReport) {
    const CampaignConfig cfg = base_config();

    // Baseline: telemetry off, single process.
    obs::Telemetry::set_enabled(false, false);
    CampaignEngine single(cfg);
    const CampaignReport a = single.run();

    // Telemetry on across a 3-worker fabric: the report must still match,
    // and the parent must end up holding every worker's metrics and events.
    obs::Telemetry::set_enabled(true, true);
    obs::Telemetry::reset();
    FabricConfig f;
    f.campaign = cfg;
    f.workers = 3;
    f.shard_size = 4;
    FabricEngine fabric(f);
    const CampaignReport b = fabric.run();
    EXPECT_EQ(a.to_json(), json_without_fabric(b));

    const obs::MetricsSnapshot merged = obs::Telemetry::merged_metrics();
    // Scenarios execute in the workers; their counts only reach the parent
    // via heartbeat-ack deltas.  GE, not EQ: a slow machine can trip the
    // job-resend timer and re-execute a shard (dedup keeps the report
    // identical, but the exact-counters see both executions).
    EXPECT_GE(
        merged.counters[static_cast<std::size_t>(obs::Counter::scenarios)],
        cfg.scenarios);
    EXPECT_GE(
        merged.counters[static_cast<std::size_t>(obs::Counter::worker_spawns)],
        3u);
    EXPECT_EQ(merged.gauges[static_cast<std::size_t>(obs::Gauge::fabric_workers)],
              3);

    // The merged timeline spans the parent plus all three worker pids.
    std::set<std::uint64_t> pids;
    bool parent_event = false;
    for (const auto& ev : obs::Telemetry::collect_trace_events()) {
        pids.insert(ev.pid);
        if (ev.pid == static_cast<std::uint64_t>(::getpid())) {
            parent_event = true;
        }
    }
    EXPECT_TRUE(parent_event);
    EXPECT_GE(pids.size(), 4u) << "expected parent + 3 distinct worker pids";

    const std::string doc = obs::Telemetry::trace_json();
    EXPECT_EQ(doc.rfind("{\"traceEvents\"", 0), 0u);
    EXPECT_NE(doc.find("ndb worker"), std::string::npos);
    EXPECT_NE(doc.find("ndb parent"), std::string::npos);

    obs::Telemetry::set_enabled(false, false);
    obs::Telemetry::reset();
}

TEST(Fabric, RejectsModesThatNeedASharedFeedbackLoop) {
    FabricConfig f;
    f.campaign = base_config();
    f.workers = 2;

    {
        FabricConfig g = f;
        g.campaign.coverage = true;
        EXPECT_THROW(FabricEngine(g).run(), std::invalid_argument);
    }
    {
        FabricConfig g = f;
        g.campaign.mutate = true;
        EXPECT_THROW(FabricEngine(g).run(), std::invalid_argument);
    }
    {
        FabricConfig g = f;
        g.campaign.mutation_recipe = "#whatever";
        EXPECT_THROW(FabricEngine(g).run(), std::invalid_argument);
    }
    {
        FabricConfig g = f;
        g.workers = 0;
        EXPECT_THROW(FabricEngine(g).run(), std::invalid_argument);
    }
    {
        FabricConfig g = f;
        g.shard_size = 0;
        EXPECT_THROW(FabricEngine(g).run(), std::invalid_argument);
    }
}

}  // namespace
