// Full quirk-matrix coverage: one differential campaign per Quirks flag.
//
// Each campaign sweeps seeded scenarios of a program chosen to exercise the
// flag, with a single-quirk override on the sdnet backend as the DUT and
// the faithful reference as ground truth.  Every flag must be detected,
// carry its own quirk signature in the fingerprint, and localize to the
// stage where the deviation physically lives.
#include <gtest/gtest.h>

#include <set>

#include "core/campaign.h"
#include "target/device.h"

namespace {

using namespace ndb;

core::CampaignReport run_flag_campaign(const dataplane::Quirks& quirks,
                                       std::vector<std::string> programs,
                                       std::uint64_t scenarios = 12) {
    core::CampaignConfig config;
    config.base_seed = 1;
    config.scenarios = scenarios;
    config.threads = 1;
    config.programs = std::move(programs);
    config.duts = {core::BackendSpec{"sdnet", quirks, "dut"}};
    core::CampaignEngine engine(config);
    return engine.run();
}

// Asserts the campaign found the quirk and every finding localizes to
// `stage` (campaigns restricted to one program and one flag must not
// scatter across stages).
void expect_detected_at(const core::CampaignReport& report,
                        const std::string& signature_fragment,
                        const std::string& stage) {
    ASSERT_FALSE(report.divergences.empty()) << report.to_string();
    for (const auto& d : report.divergences) {
        EXPECT_NE(d.quirk_signature.find(signature_fragment), std::string::npos)
            << d.fingerprint;
        EXPECT_EQ(d.fingerprint, d.backend + "|" + d.quirk_signature + "|" + stage)
            << report.to_string();
        EXPECT_TRUE(d.minimized_reproduces) << d.fingerprint;
        EXPECT_GE(d.minimized_count, 1u);
    }
}

TEST(QuirkMatrix, RejectAsAcceptDetectedAtParser) {
    dataplane::Quirks q;
    q.reject_as_accept = true;
    const auto report = run_flag_campaign(q, {"reject_filter"});
    expect_detected_at(report, "reject_as_accept", "parser");
    for (const auto& d : report.divergences) {
        EXPECT_TRUE(d.localized.diverged);
        EXPECT_EQ(d.localized.stage, dataplane::Stage::parser);
        EXPECT_NE(d.localized.description.find("verdict"), std::string::npos);
    }
}

TEST(QuirkMatrix, ParserDepthLimitDetectedAtParser) {
    // Output bytes are identical (unparsed labels ride through as payload):
    // only the internal taps can see this one, which is the paper's case
    // for on-device visibility.
    dataplane::Quirks q;
    q.parser_depth_limit = 4;
    const auto report = run_flag_campaign(q, {"deep_parser"});
    expect_detected_at(report, "parser_depth_limit=4", "parser");
    for (const auto& d : report.divergences) {
        EXPECT_EQ(d.kind, "internal") << d.detail;
    }
}

TEST(QuirkMatrix, SkipChecksumUpdateDetectedAtIngress) {
    dataplane::Quirks q;
    q.skip_checksum_update = true;
    const auto report = run_flag_campaign(q, {"ipv4_router"});
    expect_detected_at(report, "skip_checksum_update", "ingress");
}

TEST(QuirkMatrix, ShiftMiscompileDetectedAtIngress) {
    dataplane::Quirks q;
    q.shift_miscompile = true;
    const auto report = run_flag_campaign(q, {"shift_mangler"});
    expect_detected_at(report, "shift_miscompile", "ingress");
}

TEST(QuirkMatrix, TableSizeClampDetectedOnTheControlSurface) {
    // The clamp is visible before any packet flows: capacities shrink and
    // inserts beyond the clamp bounce.  Packet-level replays then localize
    // the behavioural consequence to the ingress match stage.
    dataplane::Quirks q;
    q.table_size_clamp = 2;
    const auto report = run_flag_campaign(q, {"l2_switch"});
    ASSERT_FALSE(report.divergences.empty()) << report.to_string();
    std::set<std::string> stages;
    for (const auto& d : report.divergences) {
        EXPECT_NE(d.quirk_signature.find("table_size_clamp=2"), std::string::npos);
        EXPECT_EQ(d.kind, "config") << d.detail;
        stages.insert(d.fingerprint.substr(d.fingerprint.rfind('|') + 1));
    }
    for (const auto& stage : stages) {
        EXPECT_TRUE(stage == "control" || stage == "ingress") << stage;
    }
}

TEST(QuirkMatrix, TernaryPriorityInvertedDetectedAtIngress) {
    dataplane::Quirks q;
    q.ternary_priority_inverted = true;
    const auto report = run_flag_campaign(q, {"acl_firewall"}, 16);
    expect_detected_at(report, "ternary_priority_inverted", "ingress");
}

TEST(QuirkMatrix, MetadataClobberDetectedAtParser) {
    dataplane::Quirks q;
    q.metadata_clobber = true;
    const auto report = run_flag_campaign(q, {"meta_echo"});
    expect_detected_at(report, "metadata_clobber", "parser");
}

TEST(QuirkMatrix, AllSevenFlagsYieldDistinctFingerprints) {
    // The acceptance bar: a fixed-seed sweep per flag finds all seven, and
    // their fingerprints never collide (signature + stage disambiguate).
    struct FlagCase {
        dataplane::Quirks quirks;
        std::vector<std::string> programs;
        std::uint64_t scenarios;
    };
    std::vector<FlagCase> cases;
    {
        dataplane::Quirks q;
        q.reject_as_accept = true;
        cases.push_back({q, {"reject_filter"}, 8});
    }
    {
        dataplane::Quirks q;
        q.parser_depth_limit = 4;
        cases.push_back({q, {"deep_parser"}, 8});
    }
    {
        dataplane::Quirks q;
        q.skip_checksum_update = true;
        cases.push_back({q, {"ipv4_router"}, 8});
    }
    {
        dataplane::Quirks q;
        q.shift_miscompile = true;
        cases.push_back({q, {"shift_mangler"}, 8});
    }
    {
        dataplane::Quirks q;
        q.table_size_clamp = 2;
        cases.push_back({q, {"l2_switch"}, 8});
    }
    {
        dataplane::Quirks q;
        q.ternary_priority_inverted = true;
        cases.push_back({q, {"acl_firewall"}, 16});
    }
    {
        dataplane::Quirks q;
        q.metadata_clobber = true;
        cases.push_back({q, {"meta_echo"}, 8});
    }

    std::set<std::string> fingerprints;
    for (const auto& c : cases) {
        SCOPED_TRACE(c.quirks.signature());
        const auto report = run_flag_campaign(c.quirks, c.programs, c.scenarios);
        ASSERT_FALSE(report.divergences.empty()) << report.to_string();
        for (const auto& d : report.divergences) {
            EXPECT_TRUE(fingerprints.insert(d.fingerprint).second)
                << "fingerprint collision: " << d.fingerprint;
        }
    }
    EXPECT_GE(fingerprints.size(), 7u);
}

}  // namespace
