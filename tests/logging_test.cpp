// Logger thread-safety regression: campaign pool threads log while the
// main thread reconfigures level and sink.  Before the atomics/shared_ptr
// fix this raced on both members (a torn std::function swap mid-call is a
// crash); under TSan/ASan this test is the canary.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace {

using namespace ndb::util;

// Restores the process-global logger for whoever runs next.
struct LoggerGuard {
    ~LoggerGuard() {
        Logger::instance().set_sink(nullptr);
        Logger::instance().set_level(LogLevel::warn);
    }
};

TEST(Logging, ConcurrentWritersSurviveLevelAndSinkChurn) {
    LoggerGuard guard;
    std::atomic<std::uint64_t> delivered{0};
    Logger::instance().set_level(LogLevel::info);
    Logger::instance().set_sink(
        [&delivered](LogLevel, std::string_view, std::string_view) {
            delivered.fetch_add(1, std::memory_order_relaxed);
        });

    constexpr int kThreads = 8;
    constexpr int kLines = 2000;
    std::atomic<bool> stop{false};

    // The config thread flips the level and re-installs the sink the whole
    // time the writers hammer -- every combination a campaign run can hit.
    std::thread config([&] {
        bool coarse = false;
        while (!stop.load(std::memory_order_relaxed)) {
            coarse = !coarse;
            Logger::instance().set_level(coarse ? LogLevel::error
                                                : LogLevel::info);
            Logger::instance().set_sink(
                [&delivered](LogLevel, std::string_view, std::string_view) {
                    delivered.fetch_add(1, std::memory_order_relaxed);
                });
            std::this_thread::yield();
        }
    });

    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([t] {
            for (int i = 0; i < kLines; ++i) {
                log_info("worker") << "thread " << t << " line " << i;
                log_error("worker") << "err " << i;
            }
        });
    }
    for (auto& th : writers) th.join();
    stop.store(true);
    config.join();

    // log_error lines pass every level the config thread sets, so at least
    // those must have been delivered (no torn sink, no lost dispatch).
    EXPECT_GE(delivered.load(),
              static_cast<std::uint64_t>(kThreads) * kLines);
}

TEST(Logging, LevelFilteringStillWorks) {
    LoggerGuard guard;
    std::atomic<int> hits{0};
    Logger::instance().set_sink(
        [&hits](LogLevel, std::string_view, std::string_view) { ++hits; });

    Logger::instance().set_level(LogLevel::error);
    EXPECT_EQ(Logger::instance().level(), LogLevel::error);
    EXPECT_FALSE(Logger::instance().enabled(LogLevel::debug));
    EXPECT_TRUE(Logger::instance().enabled(LogLevel::error));
    log_debug("tag") << "filtered out";
    EXPECT_EQ(hits.load(), 0);
    log_error("tag") << "delivered";
    EXPECT_EQ(hits.load(), 1);

    // nullptr restores the stderr fallback without crashing writers.
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(LogLevel::off);
    log_error("tag") << "dropped entirely";
    EXPECT_EQ(hits.load(), 1);
}

}  // namespace
