// Coverage subsystem contracts: map determinism, zero behavioural
// perturbation, scheduler energy monotonicity, guided-vs-uniform budget
// efficiency (the acceptance bar: the guided scheduler discovers all seven
// quirk fingerprints within the uniform scheduler's scenario budget), and
// soak-mode corpus growth with deterministic file naming.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/generator.h"
#include "core/soak.h"
#include "core/specgen.h"
#include "coverage/coverage.h"
#include "coverage/scheduler.h"
#include "quirk_fixture.h"
#include "target/device.h"

namespace {

using namespace ndb;
using ndb_test::FlagFixture;
using ndb_test::budget_to_all_seven;
using ndb_test::seven_flag_fixture;

// Runs one seeded catalogue scenario on a fresh reference device with
// coverage instrumentation attached; returns the filled map.
coverage::CoverageMap run_scenario_coverage(std::uint64_t seed,
                                            bool digests = false,
                                            std::vector<dataplane::TapDigest>*
                                                digests_out = nullptr) {
    const core::SpecGenerator gen;
    const core::Scenario sc = gen.make(seed);

    coverage::CoverageMap map;
    auto dev = target::make_device("reference");
    dev->set_coverage(&map);  // before load(): must survive the image swap
    EXPECT_TRUE(dev->load(*sc.compiled));
    for (const auto& op : sc.config) core::apply_config_op(*dev, op);
    if (digests) dev->set_digests_enabled(true);

    core::TestPacketGenerator pgen(sc.spec);
    for (std::uint64_t seq = 1; seq <= sc.spec.count; ++seq) {
        dev->inject(pgen.make_packet(seq, 1'000'000 + (seq - 1) * 672));
    }
    dev->flush();
    if (digests_out) *digests_out = dev->take_digest_records();
    return map;
}

TEST(CoverageMap, SlotAccountingAndMerge) {
    coverage::CoverageMap a;
    EXPECT_EQ(a.edges_covered(), 0u);
    EXPECT_EQ(a.total_hits(), 0u);

    a.record(coverage::Site::table, 3, 1);
    a.record(coverage::Site::table, 3, 1);  // same slot: one edge, two hits
    a.record(coverage::Site::action, 3);    // site kind disambiguates
    EXPECT_EQ(a.edges_covered(), 2u);
    EXPECT_EQ(a.total_hits(), 3u);

    coverage::CoverageMap fresh;
    fresh.record(coverage::Site::table, 3, 1);   // already known to `a`
    fresh.record(coverage::Site::branch, 0, 0);  // new
    EXPECT_EQ(a.merge_new_from(fresh), 1u);
    EXPECT_EQ(a.edges_covered(), 3u);
    EXPECT_EQ(a.merge_new_from(fresh), 0u);  // second merge: nothing new

    a.clear();
    EXPECT_EQ(a.edges_covered(), 0u);
    EXPECT_EQ(a, coverage::CoverageMap{});
}

TEST(CoverageMap, SameSeedProducesTheSameMap) {
    for (const std::uint64_t seed : {1ull, 9ull, 23ull}) {
        const coverage::CoverageMap first = run_scenario_coverage(seed);
        const coverage::CoverageMap second = run_scenario_coverage(seed);
        EXPECT_GT(first.edges_covered(), 0u) << "seed " << seed;
        EXPECT_EQ(first, second) << "seed " << seed;
    }
}

TEST(CoverageMap, InstrumentationDoesNotPerturbDigests) {
    // Coverage on must be execution-invisible: for the same scenario, the
    // per-packet tap digests (and therefore campaign detection) are
    // bit-identical whether or not the map is attached.
    for (const std::uint64_t seed : {1ull, 7ull, 15ull}) {
        const core::SpecGenerator gen;
        const core::Scenario sc = gen.make(seed);
        core::TestPacketGenerator pgen(sc.spec);

        std::vector<dataplane::TapDigest> with_cov;
        run_scenario_coverage(seed, /*digests=*/true, &with_cov);

        auto plain = target::make_device("reference");
        ASSERT_TRUE(plain->load(*sc.compiled));
        for (const auto& op : sc.config) core::apply_config_op(*plain, op);
        plain->set_digests_enabled(true);
        for (std::uint64_t seq = 1; seq <= sc.spec.count; ++seq) {
            plain->inject(pgen.make_packet(seq, 1'000'000 + (seq - 1) * 672));
        }
        plain->flush();
        const std::vector<dataplane::TapDigest> without_cov =
            plain->take_digest_records();

        ASSERT_EQ(with_cov.size(), without_cov.size()) << "seed " << seed;
        for (std::size_t i = 0; i < with_cov.size(); ++i) {
            EXPECT_EQ(with_cov[i], without_cov[i]) << "seed " << seed
                                                   << " packet " << i;
        }
    }
}

TEST(CorpusScheduler, EnergyMonotoneInCoverageDelta) {
    // Two identical schedulers, one rewarded harder on arm 0: the harder
    // reward must never translate into a smaller share or round count.
    coverage::CorpusScheduler small(4), big(4), idle(4);
    small.reward(0, 0.5);
    big.reward(0, 4.0);
    EXPECT_GT(big.share(0), small.share(0));
    EXPECT_GT(small.share(0), idle.share(0));

    const auto plan_small = small.plan_round(200);
    const auto plan_big = big.plan_round(200);
    const auto plan_idle = idle.plan_round(200);
    EXPECT_GE(plan_big[0], plan_small[0]);
    EXPECT_GE(plan_small[0], plan_idle[0]);

    // Accumulated gains keep growing the share, monotonically.
    double last = idle.share(1);
    for (int i = 0; i < 5; ++i) {
        idle.reward(1, 1.0);
        EXPECT_GE(idle.share(1), last);
        last = idle.share(1);
    }
}

TEST(CorpusScheduler, PlansCoverTheBudgetWithExplorationFloor) {
    coverage::CorpusScheduler sched(7);
    sched.reward(2, 8.0);  // heavily skewed
    for (const std::uint64_t budget : {0ull, 1ull, 3ull, 7ull, 20ull, 113ull}) {
        const auto plan = sched.plan_round(budget);
        ASSERT_EQ(plan.size(), 7u);
        std::uint64_t total = 0;
        for (const auto p : plan) total += p;
        EXPECT_EQ(total, budget) << "budget " << budget;
        if (budget >= 7) {
            // Exploration floor: even starved programs keep probing.
            for (std::size_t arm = 0; arm < plan.size(); ++arm) {
                EXPECT_GE(plan[arm], 1u) << "budget " << budget << " arm " << arm;
            }
        }
    }

    // A fresh scheduler splits evenly (within rounding).
    const auto uniform = coverage::CorpusScheduler(7).plan_round(21);
    for (const auto p : uniform) EXPECT_EQ(p, 3u);
}

TEST(SpecGenerator, MakeForMatchesSingleProgramReplay) {
    // The guided scheduler's (program, seed) pairs must replay through the
    // ordinary single-program corpus path: make_for on the full catalogue
    // equals make() on a generator restricted to that program.
    const core::SpecGenerator full;
    for (const std::uint64_t seed : {3ull, 11ull, 42ull}) {
        for (const std::size_t idx : {std::size_t{0}, full.programs().size() / 2,
                                      full.programs().size() - 1}) {
            const core::Scenario forced = full.make_for(idx, seed);
            const core::SpecGenerator single({full.programs()[idx]});
            const core::Scenario replay = single.make(seed);
            EXPECT_EQ(forced.program, replay.program);
            EXPECT_EQ(forced.spec.count, replay.spec.count);
            EXPECT_EQ(forced.spec.inject_port, replay.spec.inject_port);
            ASSERT_EQ(forced.config.size(), replay.config.size());
            for (std::uint64_t seq = 1; seq <= forced.spec.count; ++seq) {
                EXPECT_TRUE(core::instantiate(forced.spec.tmpl, seq)
                                .same_bytes(core::instantiate(replay.spec.tmpl, seq)));
            }
        }
    }
    EXPECT_THROW(full.make_for(full.programs().size(), 1), std::invalid_argument);
}

core::CampaignConfig guided_config(std::uint64_t scenarios, int threads) {
    core::CampaignConfig config;
    config.base_seed = 7;
    config.scenarios = scenarios;
    config.threads = threads;
    config.coverage = true;
    config.duts = {core::BackendSpec{"sdnet", std::nullopt, "sdnet"}};
    return config;
}

TEST(GuidedCampaign, ReportByteIdenticalAcrossThreadCounts) {
    core::CampaignEngine one(guided_config(60, 1));
    core::CampaignEngine four(guided_config(60, 4));
    const core::CampaignReport r1 = one.run();
    const core::CampaignReport r4 = four.run();
    EXPECT_TRUE(r1.coverage_enabled);
    EXPECT_GT(r1.coverage_edges, 0u);
    EXPECT_FALSE(r1.coverage_series.empty());
    EXPECT_FALSE(r1.divergences.empty());
    EXPECT_EQ(r1.to_json(), r4.to_json());

    // The series is cumulative and ends at the final edge count.
    std::uint64_t last = 0;
    for (const auto& point : r1.coverage_series) {
        EXPECT_GE(point.edges, last);
        last = point.edges;
    }
    EXPECT_EQ(last, r1.coverage_edges);
    EXPECT_EQ(r1.coverage_series.back().scenarios, r1.scenarios);
}

// The seven-flag acceptance sweep (tests/quirk_fixture.h): one
// single-quirk DUT per Quirks flag, each paired with the catalogue
// program that exercises it.
TEST(GuidedCampaign, FindsAllSevenFingerprintsWithinUniformBudget) {
    const FlagFixture fx = seven_flag_fixture();

    core::CampaignConfig uniform;
    uniform.base_seed = 1;
    uniform.scenarios = 128;
    uniform.threads = 2;
    ndb_test::apply_fixture(fx, uniform);
    core::CampaignEngine uniform_engine(uniform);
    const core::CampaignReport uniform_report = uniform_engine.run();

    const std::uint64_t uniform_budget =
        budget_to_all_seven(uniform_report, fx);
    ASSERT_GT(uniform_budget, 0u)
        << "uniform sweep never found all seven flags:\n"
        << uniform_report.to_string();

    // The acceptance bar: guided, given exactly the budget uniform needed,
    // must also surface all seven quirk fingerprints.
    core::CampaignConfig guided = uniform;
    guided.coverage = true;
    guided.scenarios = uniform_budget;
    core::CampaignEngine guided_engine(guided);
    const core::CampaignReport guided_report = guided_engine.run();

    std::set<std::string> found;
    for (const auto& d : guided_report.divergences) found.insert(d.backend);
    EXPECT_EQ(found.size(), fx.duts.size())
        << "guided scheduler missed flags within the uniform budget of "
        << uniform_budget << " scenarios:\n"
        << guided_report.to_string();

    // And it should not be slower to full discovery than uniform was.
    const std::uint64_t guided_budget = budget_to_all_seven(guided_report, fx);
    ASSERT_GT(guided_budget, 0u);
    EXPECT_LE(guided_budget, uniform_budget);
}

TEST(Soak, DeterministicCorpusGrowthAndReplay) {
    // A guided run against the stock sdnet backend; its fingerprints are
    // new relative to an empty corpus directory.
    core::CampaignEngine engine(guided_config(64, 2));
    const core::CampaignReport report = engine.run();
    ASSERT_FALSE(report.divergences.empty());

    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "ndb_soak_corpus_test";
    std::filesystem::remove_all(dir);

    const core::SoakResult first =
        core::append_unique_corpus_entries(report, dir.string());
    EXPECT_EQ(first.written.size(), report.divergences.size());
    EXPECT_EQ(first.skipped_known, 0u);

    // Names are a pure function of the fingerprint.
    std::vector<std::string> expected;
    for (const auto& d : report.divergences) {
        expected.push_back(core::soak_corpus_filename(d));
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(first.written, expected);

    // Idempotent: a second soak over the same findings writes nothing.
    const core::SoakResult second =
        core::append_unique_corpus_entries(report, dir.string());
    EXPECT_TRUE(second.written.empty());
    EXPECT_EQ(second.skipped_known, report.divergences.size());

    // Every written recipe replays: one scenario, the recorded program and
    // seed, the recorded backend under its catalogue quirks -- and the
    // replay reproduces the recorded fingerprint, exactly the contract
    // corpus_replay_test enforces for committed entries.
    for (const auto& name : first.written) {
        SCOPED_TRACE(name);
        std::ifstream in(dir / name);
        ASSERT_TRUE(in.good());
        std::map<std::string, std::string> kv;
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#') continue;
            const std::size_t eq = line.find('=');
            if (eq != std::string::npos) {
                kv[line.substr(0, eq)] = line.substr(eq + 1);
            }
        }
        core::CampaignConfig replay;
        replay.base_seed = std::stoull(kv.at("seed"));
        replay.scenarios = 1;
        replay.threads = 1;
        replay.programs = {kv.at("program")};
        replay.duts = {
            core::BackendSpec{kv.at("backend"), std::nullopt, "dut"}};
        core::CampaignEngine replayer(replay);
        const core::CampaignReport rr = replayer.run();
        ASSERT_EQ(rr.divergences.size(), 1u) << rr.to_string();
        EXPECT_EQ(rr.divergences[0].fingerprint,
                  "dut|" + kv.at("quirks") + "|" + kv.at("stage"));
        EXPECT_TRUE(rr.divergences[0].minimized_reproduces);
    }

    std::filesystem::remove_all(dir);
}

}  // namespace
