// Streaming tap digests vs the copy-based implementation.
//
// The campaign engine used to deep-copy three PacketState taps per packet
// and hash the copies; the pipeline now hashes the live state in place.
// These tests pin the values: for every corpus seed (and both the golden
// and quirked device images), the in-place TapDigest must be bit-identical
// to hashing materialized tap copies with the original algorithm.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/generator.h"
#include "core/specgen.h"
#include "dataplane/digest.h"
#include "target/device.h"

#ifndef NDB_CORPUS_DIR
#error "NDB_CORPUS_DIR must point at tests/corpus"
#endif

namespace {

using namespace ndb;

// --- the original copy-based hash, kept verbatim as the reference -------------

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t copy_based_hash(const p4::ir::Program& prog,
                              const std::optional<dataplane::PacketState>& tap) {
    if (!tap) return 0x9e3779b97f4a7c15ull;  // sentinel: stage never reached
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < prog.headers.size(); ++i) {
        const auto& inst = tap->headers[i];
        const unsigned char valid = inst.valid ? 1 : 0;
        h = fnv1a(h, &valid, 1);
        if (!inst.valid && !prog.headers[i].is_metadata) continue;
        for (const auto& field : inst.fields) {
            const std::string hex = field.to_hex();
            h = fnv1a(h, hex.data(), hex.size());
        }
    }
    return h;
}

// --- corpus plumbing ----------------------------------------------------------

struct CorpusEntry {
    std::string file;
    std::uint64_t seed = 0;
    std::string program;
    std::string quirks_signature;
};

dataplane::Quirks parse_signature(const std::string& signature) {
    dataplane::Quirks q;
    if (signature == "none") return q;
    std::size_t start = 0;
    while (start <= signature.size()) {
        const std::size_t plus = signature.find('+', start);
        const std::string item = signature.substr(
            start, plus == std::string::npos ? std::string::npos : plus - start);
        const std::size_t eq = item.find('=');
        const std::string key = item.substr(0, eq);
        const int value =
            eq == std::string::npos ? 0 : std::stoi(item.substr(eq + 1));
        if (key == "reject_as_accept") q.reject_as_accept = true;
        else if (key == "parser_depth_limit") q.parser_depth_limit = value;
        else if (key == "skip_checksum_update") q.skip_checksum_update = true;
        else if (key == "shift_miscompile") q.shift_miscompile = true;
        else if (key == "table_size_clamp") q.table_size_clamp = value;
        else if (key == "ternary_priority_inverted") q.ternary_priority_inverted = true;
        else if (key == "metadata_clobber") q.metadata_clobber = true;
        else if (key == "stale_entry") q.stale_entry = true;
        else if (key == "expiry_off_by_one") q.expiry_off_by_one = true;
        else if (key == "hash_collision_misdirect") q.hash_collision_misdirect = value;
        else ADD_FAILURE() << "unknown quirk in corpus signature: " << key;
        if (plus == std::string::npos) break;
        start = plus + 1;
    }
    return q;
}

std::vector<CorpusEntry> load_corpus() {
    std::vector<CorpusEntry> entries;
    std::vector<std::filesystem::path> files;
    for (const auto& file :
         std::filesystem::directory_iterator(NDB_CORPUS_DIR)) {
        if (file.path().extension() == ".corpus") files.push_back(file.path());
    }
    std::sort(files.begin(), files.end());
    for (const auto& path : files) {
        CorpusEntry entry;
        entry.file = path.filename().string();
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#') continue;
            const std::size_t eq = line.find('=');
            if (eq == std::string::npos) continue;
            const std::string key = line.substr(0, eq);
            const std::string value = line.substr(eq + 1);
            if (key == "seed") entry.seed = std::stoull(value);
            else if (key == "program") entry.program = value;
            else if (key == "quirks") entry.quirks_signature = value;
        }
        entries.push_back(std::move(entry));
    }
    return entries;
}

// Runs a scenario's packet stream with BOTH full taps and streaming digests
// enabled and asserts they describe the identical execution.
void check_device(target::Device& dev, const core::Scenario& sc) {
    ASSERT_TRUE(dev.load(*sc.compiled));
    for (const auto& op : sc.config) core::apply_config_op(dev, op);

    dev.set_taps_enabled(true);
    dev.set_digests_enabled(true);

    core::TestPacketGenerator pgen(sc.spec);
    for (std::uint64_t seq = 1; seq <= sc.spec.count; ++seq) {
        dev.inject(pgen.make_packet(seq, 1'000'000 + (seq - 1) * 672));
    }
    dev.flush();

    const auto& taps = dev.tap_records();
    const auto& digests = dev.digest_records();
    ASSERT_EQ(taps.size(), sc.spec.count);
    ASSERT_EQ(digests.size(), sc.spec.count);

    const p4::ir::Program& prog = dev.program();
    for (std::size_t i = 0; i < taps.size(); ++i) {
        const dataplane::PipelineResult& r = taps[i].result;
        const dataplane::TapDigest& d = digests[i];
        EXPECT_EQ(d.verdict, r.parser_verdict) << "packet " << i + 1;
        EXPECT_EQ(d.disposition, r.disposition) << "packet " << i + 1;
        EXPECT_EQ(d.stage_hash[0], copy_based_hash(prog, r.tap_after_parser))
            << "parser tap, packet " << i + 1;
        EXPECT_EQ(d.stage_hash[1], copy_based_hash(prog, r.tap_after_ingress))
            << "ingress tap, packet " << i + 1;
        EXPECT_EQ(d.stage_hash[2], copy_based_hash(prog, r.tap_after_egress))
            << "egress tap, packet " << i + 1;
    }
}

TEST(TapDigest, CorpusSeedsHashIdenticallyToCopyBasedTaps) {
    const std::vector<CorpusEntry> corpus = load_corpus();
    ASSERT_FALSE(corpus.empty()) << "empty corpus dir: " << NDB_CORPUS_DIR;

    for (const auto& entry : corpus) {
        SCOPED_TRACE(entry.file);
        const core::SpecGenerator gen({entry.program});
        const core::Scenario sc = gen.make(entry.seed);

        // Golden image and the corpus entry's quirked image both stream the
        // same digests their tap copies would hash to.
        auto golden = target::make_device("reference");
        ASSERT_NE(golden, nullptr);
        check_device(*golden, sc);

        auto dut = target::make_device("sdnet", parse_signature(entry.quirks_signature));
        ASSERT_NE(dut, nullptr);
        check_device(*dut, sc);
    }
}

TEST(TapDigest, UnreachedStagesReportTheSentinel) {
    // A parser-rejected packet never reaches ingress/egress: digests must
    // carry the same sentinel the copy-based hasher produced for a missing
    // tap, or stage-level divergence detection would misfire.
    const core::SpecGenerator gen({"reject_filter"});
    const core::Scenario sc = gen.make(3);
    auto dev = target::make_device("reference");
    ASSERT_TRUE(dev->load(*sc.compiled));
    dev->set_digests_enabled(true);

    core::TestPacketGenerator pgen(sc.spec);
    bool saw_reject = false;
    for (std::uint64_t seq = 1; seq <= sc.spec.count; ++seq) {
        dev->inject(pgen.make_packet(seq, 1'000'000 + (seq - 1) * 672));
    }
    for (const auto& d : dev->digest_records()) {
        if (d.verdict == dataplane::ParserVerdict::reject) {
            saw_reject = true;
            EXPECT_NE(d.stage_hash[0], dataplane::kStageNotReachedHash);
            EXPECT_EQ(d.stage_hash[1], dataplane::kStageNotReachedHash);
            EXPECT_EQ(d.stage_hash[2], dataplane::kStageNotReachedHash);
        }
    }
    EXPECT_TRUE(saw_reject) << "reject_filter seed 3 produced no rejects";
}

}  // namespace
