// Management-plane round trips: RuntimeClient -> Channel -> dispatch ->
// device.  Proves the paper's "dedicated interface" works end-to-end as
// messages, not as direct calls.
#include <gtest/gtest.h>

#include "control/channel.h"
#include "core/controller.h"
#include "core/tools.h"
#include "p4/compiler.h"
#include "p4/programs.h"
#include "target/device.h"
#include "tester/osnt.h"

namespace {

using namespace ndb;

// A host-side client wired to a device exactly like Controller does it.
struct Rig {
    std::unique_ptr<target::Device> device = target::make_reference_device();
    control::Channel channel;
    control::RuntimeClient client{channel};

    Rig() {
        channel.bind([this](const control::Request& req) {
            return control::dispatch(*device, req);
        });
    }

    void load(std::string_view source, std::string name) {
        const auto prog = p4::compile_source(source, std::move(name));
        ASSERT_TRUE(device->load(*prog));
    }
};

TEST(DeviceRuntime, AddEntryProgramsTheDataPath) {
    Rig rig;
    rig.load(p4::programs::l2_switch(), "l2_switch");

    // Default action drops: nothing comes out before programming.
    packet::Packet pkt = core::scenario::ipv4_udp_packet();
    pkt.meta.ingress_port = 0;
    rig.device->inject(pkt);
    for (int port = 0; port < rig.device->config().num_ports; ++port) {
        EXPECT_EQ(rig.device->drain_port(static_cast<std::uint32_t>(port)).size(), 0u);
    }

    ASSERT_TRUE(core::scenario::add_l2_entry(rig.client, core::scenario::host_mac(2), 3));
    EXPECT_EQ(rig.channel.requests_sent(), 1u);

    rig.device->inject(pkt);
    auto out = rig.device->drain_port(3);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].same_bytes(pkt));
}

TEST(DeviceRuntime, BadRequestsFailOverTheChannel) {
    Rig rig;
    rig.load(p4::programs::l2_switch(), "l2_switch");

    control::EntrySpec entry;
    entry.key_values = {util::Bitvec(48, 1)};
    entry.action = "forward";
    entry.action_args = {util::Bitvec(9, 1)};

    EXPECT_FALSE(rig.client.add_entry("no_such_table", entry));
    entry.action = "no_such_action";
    EXPECT_FALSE(rig.client.add_entry("dmac", entry));
    entry.action = "forward";
    entry.action_args.clear();  // wrong arity
    EXPECT_FALSE(rig.client.add_entry("dmac", entry));

    util::Bitvec reg_out;
    EXPECT_FALSE(rig.client.read_register("no_such_register", 0, reg_out));
}

TEST(DeviceRuntime, RegisterCounterAndSnapshotRoundTrip) {
    Rig rig;
    rig.load(p4::programs::stats_monitor(), "stats_monitor");

    // stats_monitor bumps port_pkts[ingress_port] and port_bytes[ingress_port],
    // then forwards everything to port 2.
    packet::Packet pkt = core::scenario::ipv4_udp_packet();
    pkt.meta.ingress_port = 1;
    for (int i = 0; i < 3; ++i) rig.device->inject(pkt);

    util::Bitvec count;
    ASSERT_TRUE(rig.client.read_register("port_pkts", 1, count));
    EXPECT_EQ(count.to_u64(), 3u);

    control::CounterValue counter;
    ASSERT_TRUE(rig.client.read_counter("port_bytes", 1, counter));
    EXPECT_EQ(counter.packets, 3u);

    const control::StatusSnapshot snap = rig.client.snapshot();
    EXPECT_EQ(snap.stages.parser_in, 3u);
    EXPECT_EQ(snap.stages.forwarded, 3u);
    ASSERT_GT(snap.ports.size(), 2u);
    EXPECT_EQ(snap.ports[1].rx_packets, 3u);
    EXPECT_EQ(snap.ports[2].tx_packets, 3u);
    EXPECT_EQ(snap.unaccounted_packets(), 0);

    // Host-side writes land in the data plane's storage.
    ASSERT_TRUE(rig.client.write_register("port_pkts", 1, util::Bitvec(48, 41)));
    rig.device->inject(pkt);
    ASSERT_TRUE(rig.client.read_register("port_pkts", 1, count));
    EXPECT_EQ(count.to_u64(), 42u);

    // Out-of-range indices are rejected, not silently absorbed.
    EXPECT_FALSE(rig.client.read_register("port_pkts", 1u << 20, count));
}

TEST(DeviceRuntime, ResetStateClearsDynamicStateKeepsConfig) {
    Rig rig;
    rig.load(p4::programs::l2_switch(), "l2_switch");
    ASSERT_TRUE(core::scenario::add_l2_entry(rig.client, core::scenario::host_mac(2), 2));

    packet::Packet pkt = core::scenario::ipv4_udp_packet();
    pkt.meta.ingress_port = 0;
    rig.device->inject(pkt);
    ASSERT_TRUE(rig.client.reset_state());

    control::StatusSnapshot snap = rig.client.snapshot();
    EXPECT_EQ(snap.stages.parser_in, 0u);
    EXPECT_EQ(snap.ports[0].rx_packets, 0u);
    ASSERT_FALSE(snap.tables.empty());
    EXPECT_EQ(snap.tables[0].hits, 0u);
    // The installed entry survives the soft reset.
    EXPECT_EQ(snap.tables[0].entries, 1u);
    rig.device->inject(pkt);
    EXPECT_EQ(rig.device->drain_port(2).size(), 1u);
}

TEST(DeviceRuntime, ControllerCampaignOverTheChannel) {
    auto device = target::make_reference_device();
    core::Controller controller(*device);
    ASSERT_TRUE(controller.load_program(p4::programs::passthrough(), "passthrough"));

    core::TestSpec spec;
    spec.name = "passthrough-campaign";
    spec.tmpl.base = core::scenario::ipv4_udp_packet();
    spec.count = 8;
    core::Expectation expect;
    expect.kind = core::Expectation::Kind::forwarded_on_port;
    expect.port = 1;
    spec.expectations.push_back(expect);

    const core::CampaignResult result = controller.run(spec);
    EXPECT_TRUE(result.passed) << result.summary;
    EXPECT_EQ(result.generator.injected, 8u);
    EXPECT_EQ(result.check.observed, 8u);
    EXPECT_EQ(result.unaccounted_packets, 0);
}

TEST(DeviceRuntime, MisdirectedPacketsAreCountedFirstClass) {
    // passthrough forwards everything to port 1; a one-port device has no
    // port 1, so the packet is forwarded by the pipeline yet never reaches a
    // queue.  The snapshot must name that loss instead of hiding it.
    target::DeviceConfig one_port;
    one_port.num_ports = 1;
    auto device = target::make_reference_device(one_port);
    const auto prog = p4::compile_source(p4::programs::passthrough(), "passthrough");
    ASSERT_TRUE(device->load(*prog));

    packet::Packet pkt = core::scenario::ipv4_udp_packet();
    pkt.meta.ingress_port = 0;
    device->inject(pkt);
    EXPECT_EQ(device->drain_port(0).size(), 0u);

    const control::StatusSnapshot snap = device->snapshot();
    EXPECT_EQ(snap.stages.forwarded, 1u);
    EXPECT_EQ(snap.misdirected, 1u);
    EXPECT_EQ(snap.unaccounted_packets(), 1);
    EXPECT_NE(snap.to_string().find("misdirected=1"), std::string::npos);

    // reset_state clears it like every other dynamic counter.
    ASSERT_TRUE(device->reset_state());
    EXPECT_EQ(device->snapshot().misdirected, 0u);

    // The campaign surface reports the same loss with attribution.
    core::Controller controller(*device);
    core::TestSpec spec;
    spec.name = "misdirected";
    spec.tmpl.base = core::scenario::ipv4_udp_packet();
    spec.count = 5;
    const core::CampaignResult result = controller.run(spec);
    EXPECT_EQ(result.misdirected, 5);
    EXPECT_EQ(result.unaccounted_packets, 5);
    EXPECT_NE(result.summary.find("misdirected=5"), std::string::npos)
        << result.summary;
}

TEST(DeviceRuntime, TapRingKeepsNewestRecordsAndHonoursZeroCap) {
    const auto prog = p4::compile_source(p4::programs::passthrough(), "passthrough");
    packet::Packet pkt = core::scenario::ipv4_udp_packet();
    pkt.meta.ingress_port = 0;

    target::DeviceConfig small;
    small.max_tap_records = 4;
    auto device = target::make_reference_device(small);
    ASSERT_TRUE(device->load(*prog));
    device->set_taps_enabled(true);
    for (std::uint64_t seq = 1; seq <= 10; ++seq) {
        pkt.meta.id = seq;
        device->inject(pkt);
    }
    ASSERT_FALSE(device->tap_records().empty());
    EXPECT_LE(device->tap_records().size(), 4u);
    // The newest record survives eviction (the localizer reads back()).
    EXPECT_EQ(device->tap_records().back().input.meta.id, 10u);

    target::DeviceConfig none;
    none.max_tap_records = 0;
    auto quiet = target::make_reference_device(none);
    ASSERT_TRUE(quiet->load(*prog));
    quiet->set_taps_enabled(true);
    quiet->inject(pkt);  // must not crash or record
    EXPECT_TRUE(quiet->tap_records().empty());
    EXPECT_EQ(quiet->drain_port(1).size(), 1u);
}

TEST(DeviceRuntime, ExternalTesterMeasuresThroughThePorts) {
    auto device = target::make_reference_device();
    const auto prog = p4::compile_source(p4::programs::passthrough(), "passthrough");
    ASSERT_TRUE(device->load(*prog));

    tester::ExternalTester external(*device);
    tester::TrafficProfile profile;
    profile.template_packet = core::scenario::ipv4_udp_packet();
    profile.inject_port = 0;
    profile.count = 16;

    const tester::Measurement m = external.measure(profile);
    EXPECT_EQ(m.sent, 16u);
    EXPECT_EQ(m.received, 16u);
    EXPECT_DOUBLE_EQ(m.loss_fraction, 0.0);
    ASSERT_GT(m.received_per_port.size(), 1u);
    EXPECT_EQ(m.received_per_port[1], 16u);  // passthrough forwards to port 1
    // Egress stamping: tx = rx + cycles * ns_per_cycle, so latency is
    // observable and nonzero from the outside.
    EXPECT_GT(m.latency_ns.max_seen(), 0u);
}

TEST(DeviceRuntime, BackendRegistryListsAndBuilds) {
    const auto names = target::registered_backends();
    ASSERT_GE(names.size(), 2u);
    EXPECT_NE(std::find(names.begin(), names.end(), "reference"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "sdnet"), names.end());

    EXPECT_EQ(target::make_device("no_such_backend"), nullptr);

    auto quirky = target::make_device("sdnet");
    ASSERT_NE(quirky, nullptr);
    EXPECT_TRUE(quirky->config().quirks.reject_as_accept);

    // Override: an sdnet device with only the depth limit active.
    dataplane::Quirks only_depth;
    only_depth.parser_depth_limit = 2;
    auto shallow = target::make_device("sdnet", only_depth);
    ASSERT_NE(shallow, nullptr);
    EXPECT_FALSE(shallow->config().quirks.reject_as_accept);
    EXPECT_EQ(shallow->config().quirks.parser_depth_limit, 2);

    // An explicit all-defaults override yields a quirk-free sdnet device.
    auto clean = target::make_device("sdnet", dataplane::Quirks{});
    ASSERT_NE(clean, nullptr);
    EXPECT_FALSE(clean->config().quirks.any());

    // Builtins cannot be shadowed, even by the very first registration.
    EXPECT_FALSE(target::register_backend(
        "sdnet", [](std::optional<dataplane::Quirks>) {
            return target::make_reference_device();
        }));
    EXPECT_TRUE(target::make_device("sdnet")->config().quirks.reject_as_accept);

    // Third-party backends register and build by name.
    EXPECT_TRUE(target::register_backend(
        "tofino_sim", [](std::optional<dataplane::Quirks> q) {
            target::DeviceConfig cfg;
            cfg.backend = "tofino_sim";
            cfg.num_ports = 32;
            if (q) cfg.quirks = *q;
            return target::make_reference_device(std::move(cfg));
        }));
    auto custom = target::make_device("tofino_sim");
    ASSERT_NE(custom, nullptr);
    EXPECT_EQ(custom->config().num_ports, 32);
    // The factory's backend name survives make_reference_device.
    EXPECT_EQ(custom->config().backend, "tofino_sim");

    // The deterministic clock starts at the epoch and only moves on traffic.
    auto dev = target::make_device("reference");
    const std::uint64_t t0 = dev->now_ns();
    EXPECT_EQ(t0, dev->config().epoch_ns);
    EXPECT_EQ(dev->now_ns(), t0);
}

}  // namespace
