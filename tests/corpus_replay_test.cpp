// Regression corpus replay: every divergence-triggering seed committed
// under tests/corpus/ must keep triggering (and keep localizing to the same
// stage) forever.  A corpus entry is the minimal reproduction recipe: seed,
// catalogue program, backend, quirk signature, expected stage.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "coverage/coverage.h"

#ifndef NDB_CORPUS_DIR
#error "NDB_CORPUS_DIR must point at tests/corpus"
#endif

namespace {

using namespace ndb;

struct CorpusEntry {
    std::string file;
    std::uint64_t seed = 0;
    std::string program;
    std::string backend;
    std::string quirks_signature;
    std::string stage;
    // Optional mutation parentage: when present the entry is a mutant and
    // replays through CampaignConfig::mutation_recipe instead of a bare
    // seed.  Absent on pre-mutation corpus files (backward compatible).
    std::string mutate;
    // Optional concolic parentage: the entry is a solver-synthesized seed
    // ('@'-headed ConcolicRecipe; `seed` is its target coverage slot) and
    // must both reproduce its divergence and re-light that slot.
    std::string concolic;
};

// Parses a quirk signature ("a+b=2+c", as produced by Quirks::signature())
// back into a Quirks value.
dataplane::Quirks parse_signature(const std::string& signature) {
    dataplane::Quirks q;
    if (signature == "none") return q;
    std::size_t start = 0;
    while (start <= signature.size()) {
        const std::size_t plus = signature.find('+', start);
        const std::string item = signature.substr(
            start, plus == std::string::npos ? std::string::npos : plus - start);
        const std::size_t eq = item.find('=');
        const std::string key = item.substr(0, eq);
        const int value =
            eq == std::string::npos ? 0 : std::stoi(item.substr(eq + 1));
        if (key == "reject_as_accept") q.reject_as_accept = true;
        else if (key == "parser_depth_limit") q.parser_depth_limit = value;
        else if (key == "skip_checksum_update") q.skip_checksum_update = true;
        else if (key == "shift_miscompile") q.shift_miscompile = true;
        else if (key == "table_size_clamp") q.table_size_clamp = value;
        else if (key == "ternary_priority_inverted") q.ternary_priority_inverted = true;
        else if (key == "metadata_clobber") q.metadata_clobber = true;
        else if (key == "stale_entry") q.stale_entry = true;
        else if (key == "expiry_off_by_one") q.expiry_off_by_one = true;
        else if (key == "hash_collision_misdirect") q.hash_collision_misdirect = value;
        else ADD_FAILURE() << "unknown quirk in corpus signature: " << key;
        if (plus == std::string::npos) break;
        start = plus + 1;
    }
    return q;
}

std::vector<CorpusEntry> load_corpus() {
    std::vector<CorpusEntry> entries;
    std::vector<std::filesystem::path> files;
    for (const auto& file :
         std::filesystem::directory_iterator(NDB_CORPUS_DIR)) {
        if (file.path().extension() == ".corpus") files.push_back(file.path());
    }
    std::sort(files.begin(), files.end());
    for (const auto& path : files) {
        CorpusEntry entry;
        entry.file = path.filename().string();
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#') continue;
            const std::size_t eq = line.find('=');
            if (eq == std::string::npos) continue;
            const std::string key = line.substr(0, eq);
            const std::string value = line.substr(eq + 1);
            if (key == "seed") entry.seed = std::stoull(value);
            else if (key == "program") entry.program = value;
            else if (key == "backend") entry.backend = value;
            else if (key == "quirks") entry.quirks_signature = value;
            else if (key == "stage") entry.stage = value;
            else if (key == "mutate") entry.mutate = value;
            else if (key == "concolic") entry.concolic = value;
        }
        entries.push_back(std::move(entry));
    }
    return entries;
}

// Parameterized over the execution engine: every committed corpus entry
// must replay identically through the tree-walking interpreter and the
// threaded-code CompiledPipeline.
class CorpusReplay : public ::testing::TestWithParam<dataplane::Engine> {};

INSTANTIATE_TEST_SUITE_P(Engines, CorpusReplay,
                         ::testing::Values(dataplane::Engine::interpreter,
                                           dataplane::Engine::compiled),
                         [](const auto& info) {
                             return std::string(
                                 dataplane::engine_name(info.param));
                         });

TEST_P(CorpusReplay, EveryKnownDivergenceStillTriggers) {
    const std::vector<CorpusEntry> corpus = load_corpus();
    ASSERT_FALSE(corpus.empty()) << "empty corpus dir: " << NDB_CORPUS_DIR;

    for (const auto& entry : corpus) {
        SCOPED_TRACE(entry.file);
        const dataplane::Quirks quirks = parse_signature(entry.quirks_signature);

        core::CampaignConfig config;
        config.base_seed = entry.seed;
        config.scenarios = 1;
        config.threads = 1;
        config.programs = {entry.program};
        config.duts = {core::BackendSpec{entry.backend, quirks, "dut"}};
        config.engine = GetParam();
        // "" = fresh-seed replay; the mutate/concolic grammars are mutually
        // unparseable ('#' vs '@' head), so one field carries either.
        config.mutation_recipe =
            entry.concolic.empty() ? entry.mutate : entry.concolic;
        coverage::CoverageMap map;
        if (!entry.concolic.empty()) {
            config.coverage = true;
            config.coverage_map_out = &map;
        }
        core::CampaignEngine engine(config);
        const core::CampaignReport report = engine.run();

        if (!entry.concolic.empty()) {
            // A concolic entry's seed IS its target coverage slot; the
            // replayed scenario must still light it on this engine.
            EXPECT_EQ(report.scenarios_concolic, 1u);
            EXPECT_GT(map.count(static_cast<std::uint32_t>(entry.seed)), 0u)
                << "synthesized seed no longer lights its target slot";
        }

        ASSERT_EQ(report.divergences.size(), 1u)
            << "known-bug scenario no longer diverges\n"
            << report.to_string();
        const core::DivergenceRecord& d = report.divergences[0];
        EXPECT_EQ(d.seed, entry.seed);
        EXPECT_EQ(d.program, entry.program);
        EXPECT_EQ(d.quirk_signature, entry.quirks_signature);
        EXPECT_EQ(d.fingerprint, "dut|" + entry.quirks_signature + "|" + entry.stage)
            << report.to_string();
        EXPECT_TRUE(d.minimized_reproduces);
    }
}

}  // namespace
