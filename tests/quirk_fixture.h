// Shared seven-flag acceptance fixture: one single-quirk DUT per
// dataplane::Quirks flag, each paired with the catalogue program that
// exercises it, plus the budget metric both the coverage_test and
// mutate_test acceptance sweeps compare on.  Kept in one header so the two
// sweeps can never drift onto different quirk sets.
#pragma once

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "dataplane/engine.h"
#include "dataplane/quirks.h"

namespace ndb_test {

struct FlagFixture {
    std::vector<std::string> programs;
    std::vector<ndb::core::BackendSpec> duts;
    // Execution engine the sweep should run under.  Defaults to the
    // process-wide selection, so NDB_ENGINE=interp|compiled re-runs every
    // fixture-based acceptance test against either engine without edits.
    ndb::dataplane::Engine engine = ndb::dataplane::default_engine();
};

// Applies the fixture's common knobs onto a campaign config.
inline void apply_fixture(const FlagFixture& fx, ndb::core::CampaignConfig& cfg) {
    cfg.programs = fx.programs;
    cfg.duts = fx.duts;
    cfg.engine = fx.engine;
}

inline FlagFixture seven_flag_fixture() {
    using ndb::core::BackendSpec;
    using ndb::dataplane::Quirks;
    FlagFixture fx;
    const auto add = [&fx](const std::string& label, Quirks q,
                           const std::string& program) {
        fx.duts.push_back(BackendSpec{"sdnet", q, label});
        if (std::find(fx.programs.begin(), fx.programs.end(), program) ==
            fx.programs.end()) {
            fx.programs.push_back(program);
        }
    };
    {
        Quirks q;
        q.reject_as_accept = true;
        add("reject_as_accept", q, "reject_filter");
    }
    {
        Quirks q;
        q.parser_depth_limit = 4;
        add("parser_depth_limit", q, "deep_parser");
    }
    {
        Quirks q;
        q.skip_checksum_update = true;
        add("skip_checksum_update", q, "ipv4_router");
    }
    {
        Quirks q;
        q.shift_miscompile = true;
        add("shift_miscompile", q, "shift_mangler");
    }
    {
        Quirks q;
        q.table_size_clamp = 2;
        add("table_size_clamp", q, "l2_switch");
    }
    {
        Quirks q;
        q.ternary_priority_inverted = true;
        add("ternary_priority_inverted", q, "acl_firewall");
    }
    {
        Quirks q;
        q.metadata_clobber = true;
        add("metadata_clobber", q, "meta_echo");
    }
    return fx;
}

// One single-quirk DUT per state-class quirk, paired with the stateful NF
// program whose register/extern traffic makes it observable.  The programs
// list carries all four NF shapes so every DUT also sweeps flows it should
// stay silent on.
inline FlagFixture state_quirk_fixture() {
    using ndb::core::BackendSpec;
    using ndb::dataplane::Quirks;
    FlagFixture fx;
    const auto add = [&fx](const std::string& label, Quirks q,
                           const std::string& program) {
        fx.duts.push_back(BackendSpec{"sdnet", q, label});
        if (std::find(fx.programs.begin(), fx.programs.end(), program) ==
            fx.programs.end()) {
            fx.programs.push_back(program);
        }
    };
    {
        Quirks q;
        q.stale_entry = true;
        add("stale_entry", q, "flow_firewall");
    }
    {
        Quirks q;
        q.expiry_off_by_one = true;
        add("expiry_off_by_one", q, "nat_gateway");
    }
    {
        Quirks q;
        q.hash_collision_misdirect = 3;
        add("hash_collision_misdirect", q, "maglev_lb");
    }
    if (std::find(fx.programs.begin(), fx.programs.end(), "learning_bridge") ==
        fx.programs.end()) {
        fx.programs.push_back("learning_bridge");
    }
    return fx;
}

// Scenario budget a report needed before every one of the seven flags had
// produced at least one fingerprint (max over flags of the first discovery
// ordinal); 0 when a flag was never found.
inline std::uint64_t budget_to_all_seven(const ndb::core::CampaignReport& report,
                                         const FlagFixture& fx) {
    std::map<std::string, std::uint64_t> first;
    for (const auto& d : report.divergences) {
        auto [it, inserted] = first.emplace(d.backend, d.discovered_at);
        if (!inserted) it->second = std::min(it->second, d.discovered_at);
    }
    if (first.size() < fx.duts.size()) return 0;
    std::uint64_t worst = 0;
    for (const auto& [label, at] : first) worst = std::max(worst, at);
    return worst;
}

}  // namespace ndb_test
