// Bitvec representation tests: the inline small-value storage contract
// (widths <= 64 never allocate) and word-level operation correctness
// against a bit-at-a-time reference.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "util/bitvec.h"
#include "util/random.h"

// --- instrumented allocator ---------------------------------------------------
//
// Counts every global allocation in the test binary.  The counter is only
// meaningful between reset/read pairs on one thread, which is all the
// no-allocation assertions need.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(n ? n : 1)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(n ? n : 1)) return p;
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using ndb::util::Bitvec;
using ndb::util::Rng;

std::uint64_t allocations() {
    return g_allocations.load(std::memory_order_relaxed);
}

TEST(BitvecAlloc, NarrowConstructionAndArithmeticNeverTouchTheHeap) {
    // Warm up anything lazy (gtest bookkeeping etc.) before counting.
    Bitvec warm(48, 0x1234);
    ASSERT_EQ(warm.width(), 48);

    const std::uint64_t before = allocations();
    for (int width : {1, 8, 9, 16, 32, 48, 63, 64}) {
        Bitvec a(width, 0xdeadbeefcafef00dull);
        Bitvec b(width, 0x0123456789abcdefull);
        Bitvec ones = Bitvec::ones(width);

        Bitvec r = a.add(b);
        r = r.sub(a);
        r = r.mul(b);
        r = r.band(ones);
        r = r.bor(b);
        r = r.bxor(a);
        r = r.bnot();
        r = r.neg();
        r = r.shl(width / 2);
        r = r.lshr(width / 3);
        r = r.resize(width);
        if (width > 1) r = r.slice(width - 1, 1).resize(width);
        r.set_slice(width - 1, 0, a);
        r.zero();
        r.set_bit(width - 1, true);

        (void)a.eq(b);
        (void)a.ult(b);
        (void)a.ule(b);
        (void)a.is_zero();
        (void)a.is_ones();
        (void)a.to_u64();
        (void)a.hash();
        (void)(a == b);

        Bitvec copied = a;           // copy
        Bitvec moved = std::move(copied);  // move
        (void)moved;
        (void)Bitvec::concat(a.slice(width - 1, width / 2),
                             a.slice(width / 2 != 0 ? width / 2 - 1 : 0, 0));
    }
    EXPECT_EQ(allocations(), before)
        << "a <=64-bit Bitvec operation allocated on the heap";
}

TEST(BitvecAlloc, WideValuesStillWork) {
    // > 64 bits takes the heap path; semantics must be unaffected.
    Bitvec a = Bitvec::from_hex("0x0102030405060708090a0b0c0d0e0f10", 128);
    EXPECT_EQ(a.width(), 128);
    EXPECT_FALSE(a.fits_u64());
    EXPECT_EQ(a.to_u64(), 0x090a0b0c0d0e0f10ull);
    EXPECT_EQ(a.to_hex(), "0x0102030405060708090a0b0c0d0e0f10");

    const Bitvec b = a.add(Bitvec(128, 1));
    EXPECT_EQ(b.to_u64(), 0x090a0b0c0d0e0f11ull);
    EXPECT_TRUE(a.ult(b));
    EXPECT_EQ(a.slice(127, 64).to_u64(), 0x0102030405060708ull);
    EXPECT_EQ(Bitvec::concat(a.slice(127, 64), a.slice(63, 0)), a);
    EXPECT_EQ(a.resize(64).to_u64(), a.to_u64());
    EXPECT_EQ(a.resize(200).resize(128), a);
}

// Bit-at-a-time reference implementations of the word-level kernels.
Bitvec ref_shl(const Bitvec& a, int amount) {
    Bitvec r(a.width());
    for (int i = a.width() - 1; i >= amount; --i) r.set_bit(i, a.bit(i - amount));
    return r;
}

Bitvec ref_lshr(const Bitvec& a, int amount) {
    Bitvec r(a.width());
    for (int i = 0; i + amount < a.width(); ++i) r.set_bit(i, a.bit(i + amount));
    return r;
}

Bitvec ref_slice(const Bitvec& a, int hi, int lo) {
    Bitvec r(hi - lo + 1);
    for (int i = lo; i <= hi; ++i) r.set_bit(i - lo, a.bit(i));
    return r;
}

Bitvec ref_concat(const Bitvec& hi, const Bitvec& lo) {
    Bitvec r(hi.width() + lo.width());
    for (int i = 0; i < lo.width(); ++i) r.set_bit(i, lo.bit(i));
    for (int i = 0; i < hi.width(); ++i) r.set_bit(lo.width() + i, hi.bit(i));
    return r;
}

Bitvec random_bitvec(Rng& rng, int width) {
    Bitvec v(width);
    for (int i = 0; i < width; i += 64) {
        const int chunk = std::min(64, width - i);
        std::uint64_t bits = rng.next_u64();
        for (int b = 0; b < chunk; ++b) {
            if ((bits >> b) & 1) v.set_bit(i + b, true);
        }
    }
    return v;
}

TEST(BitvecWordOps, MatchBitwiseReferenceAcrossWidths) {
    Rng rng(2024);
    for (const int width : {1, 7, 31, 64, 65, 96, 128, 200, 257}) {
        for (int round = 0; round < 24; ++round) {
            const Bitvec a = random_bitvec(rng, width);
            const int amount = static_cast<int>(rng.next_below(
                static_cast<std::uint64_t>(width) + 2));
            EXPECT_EQ(a.shl(amount), ref_shl(a, amount)) << width;
            EXPECT_EQ(a.lshr(amount), ref_lshr(a, amount)) << width;

            const int hi = static_cast<int>(rng.next_below(
                static_cast<std::uint64_t>(width)));
            const int lo = static_cast<int>(rng.next_below(
                static_cast<std::uint64_t>(hi) + 1));
            EXPECT_EQ(a.slice(hi, lo), ref_slice(a, hi, lo)) << width;

            const Bitvec b = random_bitvec(
                rng, static_cast<int>(rng.next_below(130)));
            EXPECT_EQ(Bitvec::concat(a, b), ref_concat(a, b)) << width;

            // set_slice == slice round-trip.
            Bitvec c = a;
            const Bitvec v = random_bitvec(rng, hi - lo + 1);
            c.set_slice(hi, lo, v);
            EXPECT_EQ(c.slice(hi, lo), v) << width;
            if (lo > 0) {
                EXPECT_EQ(c.slice(lo - 1, 0), a.slice(lo - 1, 0));
            }
            if (hi + 1 < width) {
                EXPECT_EQ(c.slice(width - 1, hi + 1), a.slice(width - 1, hi + 1));
            }

            // Byte/hex round-trips.
            const auto bytes = a.to_bytes();
            EXPECT_EQ(Bitvec::from_bytes(bytes, width), a) << width;
            EXPECT_EQ(Bitvec::from_hex(a.to_hex(), width), a) << width;
        }
    }
}

TEST(BitvecWordOps, EdgeBehaviourUnchanged) {
    // Width-0 identities.
    const Bitvec empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_TRUE(empty.is_zero());
    EXPECT_TRUE(empty.is_ones());
    EXPECT_EQ(Bitvec::concat(empty, Bitvec(8, 0x5a)).to_u64(), 0x5aull);
    EXPECT_EQ(Bitvec::concat(Bitvec(8, 0x5a), empty).to_u64(), 0x5aull);

    // Overflowing inputs still throw.
    const std::vector<std::uint8_t> big = {0xff, 0xff};
    EXPECT_THROW(Bitvec::from_bytes(big, 8), std::invalid_argument);
    EXPECT_THROW(Bitvec::from_hex("0x1ff", 8), std::invalid_argument);
    EXPECT_THROW(Bitvec(8, 0).bit(8), std::out_of_range);
    EXPECT_THROW(Bitvec(8, 0).slice(8, 0), std::out_of_range);
    EXPECT_THROW(Bitvec(8, 0).add(Bitvec(9, 0)), std::invalid_argument);

    // Truncating constructor masks to width.
    EXPECT_EQ(Bitvec(4, 0xff).to_u64(), 0xfull);
    EXPECT_EQ(Bitvec(64, ~0ull).to_u64(), ~0ull);
    EXPECT_TRUE(Bitvec::ones(65).is_ones());
}

}  // namespace
