// Reference vs. vendor-backend divergence for the quirk catalogue:
// shift_miscompile at expression level, ternary_priority_inverted and
// parser_depth_limit at device level (the latter localized through the taps).
#include <gtest/gtest.h>

#include "core/localize.h"
#include "core/tools.h"
#include "dataplane/interp.h"
#include "p4/compiler.h"
#include "p4/programs.h"
#include "target/device.h"

namespace {

using namespace ndb;

TEST(Quirks, SdnetCatalogueHeadlinedByRejectAsAccept) {
    const dataplane::Quirks q = target::sdnet_quirks();
    EXPECT_TRUE(q.reject_as_accept);
    EXPECT_TRUE(q.any());
    EXPECT_FALSE(dataplane::Quirks{}.any());
}

TEST(Quirks, ShiftMiscompileTurnsRightShiftsLeft) {
    // 0x80 >> 4: correct backends produce 0x08; the miscompiled one shifts
    // left and the bit falls off the 8-bit result entirely.
    auto prog = p4::compile_source(p4::programs::passthrough(), "passthrough");
    dataplane::PacketState state = dataplane::PacketState::initial(
        *prog, packet::PacketMeta{}, 64);
    dataplane::Frame frame;

    p4::ir::Expr expr;
    expr.kind = p4::ir::Expr::Kind::binary;
    expr.bin = p4::ast::BinOp::shr;
    expr.width = 8;
    expr.a = p4::ir::make_const(util::Bitvec(8, 0x80));
    expr.b = p4::ir::make_const(util::Bitvec(8, 4));

    const util::Bitvec faithful =
        dataplane::eval_expr(*prog, expr, state, frame, dataplane::Quirks{});
    EXPECT_EQ(faithful.to_u64(), 0x08u);

    dataplane::Quirks quirks;
    quirks.shift_miscompile = true;
    const util::Bitvec miscompiled =
        dataplane::eval_expr(*prog, expr, state, frame, quirks);
    EXPECT_EQ(miscompiled.to_u64(), 0x00u);
    EXPECT_TRUE(target::sdnet_quirks().shift_miscompile);
}

// Programs two overlapping ACL entries and returns the egress port the
// device picks for a canonical UDP packet (0 = dropped).
std::uint32_t acl_winner(target::Device& device) {
    const auto prog =
        p4::compile_source(p4::programs::acl_firewall(), "acl_firewall");
    EXPECT_TRUE(device.load(*prog));

    // Low-priority wildcard-everything entry -> port 3.
    control::EntrySpec wildcard;
    wildcard.key_values = {util::Bitvec(32, 0), util::Bitvec(32, 0),
                           util::Bitvec(8, 0), util::Bitvec(16, 0)};
    wildcard.key_masks = {util::Bitvec(32, 0), util::Bitvec(32, 0),
                          util::Bitvec(8, 0), util::Bitvec(16, 0)};
    wildcard.priority = 1;
    wildcard.action = "allow";
    wildcard.action_args = {util::Bitvec(9, 3)};
    EXPECT_TRUE(device.add_entry("acl", wildcard));

    // High-priority UDP-to-7000 entry -> port 2.
    EXPECT_TRUE(core::scenario::add_acl_allow_udp(device.runtime(), 7000, 2));

    packet::Packet pkt = core::scenario::ipv4_udp_packet();
    pkt.meta.ingress_port = 0;
    device.inject(pkt);
    for (std::uint32_t port = 0;
         port < static_cast<std::uint32_t>(device.config().num_ports); ++port) {
        if (!device.drain_port(port).empty()) return port;
    }
    return 0;
}

TEST(Quirks, TernaryPriorityInvertedPicksTheWrongAclEntry) {
    auto reference = target::make_reference_device();
    EXPECT_EQ(acl_winner(*reference), 2u);  // highest priority wins

    dataplane::Quirks quirks;
    quirks.ternary_priority_inverted = true;
    auto buggy = target::make_device("sdnet", quirks);
    ASSERT_NE(buggy, nullptr);
    EXPECT_EQ(acl_winner(*buggy), 3u);  // priority encoder wired backwards
    EXPECT_TRUE(target::sdnet_quirks().ternary_priority_inverted);
}

TEST(Quirks, RejectAsAcceptLocalizesToTheParserStage) {
    // The headline bug extracts identical headers before mis-accepting, so
    // only the verdicts diverge at the parser tap.
    const auto prog =
        p4::compile_source(p4::programs::reject_filter(), "reject_filter");
    auto dut = target::make_sdnet_device();
    auto golden = target::make_reference_device();
    ASSERT_TRUE(dut->load(*prog));
    ASSERT_TRUE(golden->load(*prog));

    packet::Packet arp = core::scenario::arp_packet();
    arp.meta.ingress_port = 0;

    core::FaultLocalizer localizer(*dut, *golden);
    const core::LocalizeResult result = localizer.localize_linear(arp);
    EXPECT_TRUE(result.diverged);
    EXPECT_EQ(result.stage, dataplane::Stage::parser) << result.to_string();
    EXPECT_NE(result.description.find("verdict"), std::string::npos)
        << result.description;

    // Bisection must agree with the linear scan (probe reports divergence
    // at-or-before the probed stage, keeping the search monotone).
    const core::LocalizeResult bisected = localizer.localize_binary(arp);
    EXPECT_TRUE(bisected.diverged);
    EXPECT_EQ(bisected.stage, dataplane::Stage::parser) << bisected.to_string();
}

TEST(Quirks, MetadataClobberConfinedToParserIsFoundByBothStrategies) {
    // metadata_clobber diverges only at the parser tap: stats_monitor's
    // ingress overwrites meta.pkt_count from a register before any use, so
    // ingress/egress taps and dispositions all agree.  Bisection (which
    // never probes the parser unless an earlier divergence points there)
    // must still find it.
    const auto prog =
        p4::compile_source(p4::programs::stats_monitor(), "stats_monitor");
    dataplane::Quirks clobber;
    clobber.metadata_clobber = true;
    auto dut = target::make_device("reference", clobber);
    auto golden = target::make_reference_device();
    ASSERT_TRUE(dut->load(*prog));
    ASSERT_TRUE(golden->load(*prog));

    packet::Packet pkt = core::scenario::ipv4_udp_packet();
    pkt.meta.ingress_port = 0;

    core::FaultLocalizer localizer(*dut, *golden);
    const core::LocalizeResult linear = localizer.localize_linear(pkt);
    EXPECT_TRUE(linear.diverged) << linear.to_string();
    EXPECT_EQ(linear.stage, dataplane::Stage::parser);

    const core::LocalizeResult binary = localizer.localize_binary(pkt);
    EXPECT_TRUE(binary.diverged) << binary.to_string();
    EXPECT_EQ(binary.stage, dataplane::Stage::parser);
}

TEST(Quirks, LocalizerReportsInconclusiveWhenTapsCannotRecord) {
    // A DUT whose tap ring is disabled gives the localizer nothing to
    // compare; that must not read as a clean bill of health.
    const auto prog =
        p4::compile_source(p4::programs::reject_filter(), "reject_filter");
    target::DeviceConfig no_taps;
    no_taps.max_tap_records = 0;
    auto dut = target::make_sdnet_device(no_taps);
    auto golden = target::make_reference_device();
    ASSERT_TRUE(dut->load(*prog));
    ASSERT_TRUE(golden->load(*prog));

    packet::Packet arp = core::scenario::arp_packet();
    arp.meta.ingress_port = 0;

    core::FaultLocalizer localizer(*dut, *golden);
    const core::LocalizeResult result = localizer.localize_linear(arp);
    EXPECT_FALSE(result.diverged);
    EXPECT_FALSE(result.conclusive);
    EXPECT_NE(result.description.find("inconclusive"), std::string::npos)
        << result.description;
    // Blind probes bail out early instead of replaying every stage.
    EXPECT_EQ(result.probes, 1);
}

TEST(Quirks, ParserDepthLimitLocalizesToTheParserStage) {
    const auto prog = p4::compile_source(p4::programs::deep_parser(), "deep_parser");

    dataplane::Quirks quirks;
    quirks.parser_depth_limit = 4;  // ethernet + three labels, then give up
    auto dut = target::make_device("sdnet", quirks);
    auto golden = target::make_reference_device();
    ASSERT_TRUE(dut->load(*prog));
    ASSERT_TRUE(golden->load(*prog));

    packet::Packet stimulus = core::scenario::label_stack_packet(8);
    stimulus.meta.ingress_port = 0;

    core::FaultLocalizer localizer(*dut, *golden);
    const core::LocalizeResult linear = localizer.localize_linear(stimulus);
    EXPECT_TRUE(linear.diverged) << linear.to_string();
    EXPECT_EQ(linear.stage, dataplane::Stage::parser) << linear.to_string();

    const core::LocalizeResult binary = localizer.localize_binary(stimulus);
    EXPECT_TRUE(binary.diverged);
    EXPECT_EQ(binary.stage, dataplane::Stage::parser);
    // Bisection over {parser, ingress, egress} needs at most 2 probes.
    EXPECT_LE(binary.probes, 2);

    // A shallow stack fits the hardware parser: no divergence, and the
    // probes actually observed tap records, so the verdict is conclusive.
    packet::Packet shallow = core::scenario::label_stack_packet(3);
    shallow.meta.ingress_port = 0;
    const core::LocalizeResult clean = localizer.localize_linear(shallow);
    EXPECT_FALSE(clean.diverged);
    EXPECT_TRUE(clean.conclusive);
}

TEST(Quirks, DepthLimitedParserAcceptsEarlyAtPipelineLevel) {
    const auto prog = p4::compile_source(p4::programs::deep_parser(), "deep_parser");
    dataplane::Quirks quirks;
    quirks.parser_depth_limit = 4;

    dataplane::ParserEngine faithful(*prog);
    dataplane::ParserEngine limited(*prog, quirks);

    const packet::Packet pkt = core::scenario::label_stack_packet(8);
    dataplane::PacketState full = dataplane::PacketState::initial(
        *prog, pkt.meta, static_cast<std::uint32_t>(pkt.size()));
    dataplane::PacketState shallow = dataplane::PacketState::initial(
        *prog, pkt.meta, static_cast<std::uint32_t>(pkt.size()));

    EXPECT_EQ(faithful.run(pkt, full), dataplane::ParserVerdict::accept);
    EXPECT_EQ(limited.run(pkt, shallow), dataplane::ParserVerdict::accept);

    const int l3 = prog->header_index("l3");
    const int l7 = prog->header_index("l7");
    ASSERT_GE(l3, 0);
    ASSERT_GE(l7, 0);
    EXPECT_TRUE(full.header_valid(l7));
    EXPECT_TRUE(shallow.header_valid(prog->header_index("l2")));
    // Extracts beyond the hardware's stage budget silently never happen.
    EXPECT_FALSE(shallow.header_valid(l3));
    EXPECT_FALSE(shallow.header_valid(l7));
}

}  // namespace
