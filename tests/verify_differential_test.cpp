// Differential oracle for the verification substrate, and the concolic
// end-to-end acceptance bar.
//
// Layer 1 (expression level): randomized bit-vector expressions are
// bit-blasted and solved by the in-tree SAT core, and every model the
// solver produces is replayed through an independent reference evaluator
// written against the documented wrap-modulo-2^width semantics.  The same
// expressions are also evaluated under random concrete environments and
// the solver is asked to agree (sat with the matching polarity pinned,
// unsat with the opposite) -- soundness and completeness checked in both
// directions.  Constraints are deliberately passed as temporaries: the
// bit-blaster once cached literals by raw Node pointer, so a freed node's
// address could be recycled by a structurally different term and inherit
// its CNF (heap-layout-dependent spurious unsat).  These tests pin that
// regression.
//
// Layer 2 (program level): every seed the concolic synthesizer produces
// for a catalogue program must actually light its target coverage slot
// when the decoded packet+config runs on a real device -- under both
// execution engines.  Plus the campaign acceptance bar: on the seven-flag
// quirk fixture, a concolic-assisted guided campaign lights coverage
// slots that stay dark under pure greybox at the same scenario budget,
// and every injected `concolic=` recipe replays deterministically to
// re-light its slot.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/generator.h"
#include "core/mutate.h"
#include "core/specgen.h"
#include "coverage/coverage.h"
#include "coverage/edge_index.h"
#include "quirk_fixture.h"
#include "target/device.h"
#include "verify/concolic.h"
#include "verify/solver.h"
#include "verify/symexec.h"

namespace {

using namespace ndb;
using verify::SExpr;

// --- layer 1: randomized expression differential ------------------------------

std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t width_mask(int w) {
    return w >= 64 ? ~0ull : ((1ull << w) - 1);
}

// Independent reference semantics for the term language: plain uint64
// arithmetic masked to the node width.  Kept separate from the bit-blaster
// on purpose -- agreement between the two is the test.
struct RefEval {
    std::map<int, std::uint64_t> env;  // var_id -> concrete value

    std::uint64_t eval(const SExpr& e) const {
        using verify::Op;
        const auto& n = *e;
        switch (n.op) {
            case Op::var:
            case Op::bool_var:
                return env.at(n.var_id);
            case Op::constant:
            case Op::bool_const:
                return n.value.to_u64();
            case Op::add:
                return (eval(n.a) + eval(n.b)) & width_mask(n.width);
            case Op::sub:
                return (eval(n.a) - eval(n.b)) & width_mask(n.width);
            case Op::mul:
                return (eval(n.a) * eval(n.b)) & width_mask(n.width);
            case Op::band:
                return eval(n.a) & eval(n.b);
            case Op::bor:
                return eval(n.a) | eval(n.b);
            case Op::bxor:
                return eval(n.a) ^ eval(n.b);
            case Op::bnot:
                return ~eval(n.a) & width_mask(n.width);
            case Op::shl: {
                const std::uint64_t amt = eval(n.b);
                if (amt >= static_cast<std::uint64_t>(n.width)) return 0;
                return (eval(n.a) << amt) & width_mask(n.width);
            }
            case Op::lshr: {
                const std::uint64_t amt = eval(n.b);
                if (amt >= static_cast<std::uint64_t>(n.width)) return 0;
                return eval(n.a) >> amt;
            }
            case Op::eq:
                return eval(n.a) == eval(n.b) ? 1 : 0;
            case Op::ult:
                return eval(n.a) < eval(n.b) ? 1 : 0;
            case Op::ule:
                return eval(n.a) <= eval(n.b) ? 1 : 0;
            case Op::bool_and:
                return (eval(n.a) & eval(n.b)) & 1;
            case Op::bool_or:
                return (eval(n.a) | eval(n.b)) & 1;
            case Op::bool_not:
                return eval(n.a) ^ 1;
            case Op::ite:
                return eval(n.c) ? eval(n.a) : eval(n.b);
            case Op::slice:
                return (eval(n.a) >> n.lo) & width_mask(n.hi - n.lo + 1);
            case Op::concat:
                return (eval(n.a) << n.b->width) | eval(n.b);
            case Op::zext:
                return eval(n.a) & width_mask(n.width);
        }
        ADD_FAILURE() << "unhandled op";
        return 0;
    }
};

// The random variables one generated expression draws over.
struct TestVars {
    std::vector<SExpr> vars;
    std::vector<int> widths;
};

TestVars make_vars(std::uint64_t& rng) {
    static const int kWidths[] = {4, 8, 9, 13, 16};
    TestVars tv;
    const int count = 2 + static_cast<int>(splitmix64(rng) % 3);  // 2..4
    for (int i = 0; i < count; ++i) {
        const int w = kWidths[splitmix64(rng) % std::size(kWidths)];
        tv.vars.push_back(verify::sv_var(i, w, "v" + std::to_string(i)));
        tv.widths.push_back(w);
    }
    return tv;
}

// Random bit-vector term of exactly `width` bits.  Widths stay <= 32 so
// the reference evaluator's uint64 arithmetic is exact even for concat.
SExpr random_term(std::uint64_t& rng, const TestVars& tv, int width, int depth) {
    using namespace verify;
    if (depth <= 0 || splitmix64(rng) % 4 == 0) {
        // Leaf: a variable resized to the requested width, or a constant.
        if (splitmix64(rng) % 3 == 0) {
            return sv_const_u(width, splitmix64(rng) & width_mask(width));
        }
        const std::size_t i = splitmix64(rng) % tv.vars.size();
        return sv_resize(tv.vars[i], width);
    }
    switch (splitmix64(rng) % 10) {
        case 0: return sv_add(random_term(rng, tv, width, depth - 1),
                              random_term(rng, tv, width, depth - 1));
        case 1: return sv_sub(random_term(rng, tv, width, depth - 1),
                              random_term(rng, tv, width, depth - 1));
        case 2: return sv_mul(random_term(rng, tv, width, depth - 1),
                              random_term(rng, tv, width, depth - 1));
        case 3: return sv_and(random_term(rng, tv, width, depth - 1),
                              random_term(rng, tv, width, depth - 1));
        case 4: return sv_or(random_term(rng, tv, width, depth - 1),
                             random_term(rng, tv, width, depth - 1));
        case 5: return sv_xor(random_term(rng, tv, width, depth - 1),
                              random_term(rng, tv, width, depth - 1));
        case 6: return sv_not(random_term(rng, tv, width, depth - 1));
        case 7: return splitmix64(rng) % 2
                           ? sv_shl(random_term(rng, tv, width, depth - 1),
                                    random_term(rng, tv, width, depth - 1))
                           : sv_lshr(random_term(rng, tv, width, depth - 1),
                                     random_term(rng, tv, width, depth - 1));
        case 8: {
            if (width >= 2) {
                const int lo_w =
                    1 + static_cast<int>(splitmix64(rng) % (width - 1));
                return sv_concat(random_term(rng, tv, width - lo_w, depth - 1),
                                 random_term(rng, tv, lo_w, depth - 1));
            }
            return sv_not(random_term(rng, tv, width, depth - 1));
        }
        default: {
            const int inner = width + static_cast<int>(splitmix64(rng) % 8);
            if (inner > width && inner <= 32) {
                return sv_slice(random_term(rng, tv, inner, depth - 1),
                                width - 1, 0);
            }
            return sv_resize(random_term(rng, tv, width, depth - 1), width);
        }
    }
}

// Random boolean formula over comparisons of same-width terms.
SExpr random_formula(std::uint64_t& rng, const TestVars& tv, int depth) {
    using namespace verify;
    static const int kWidths[] = {4, 8, 9, 13, 16, 24, 32};
    if (depth <= 0 || splitmix64(rng) % 3 == 0) {
        const int w = kWidths[splitmix64(rng) % std::size(kWidths)];
        SExpr a = random_term(rng, tv, w, 2);
        SExpr b = random_term(rng, tv, w, 2);
        switch (splitmix64(rng) % 3) {
            case 0: return sv_eq(a, b);
            case 1: return sv_ult(a, b);
            default: return sv_ule(a, b);
        }
    }
    switch (splitmix64(rng) % 4) {
        case 0: return sv_land(random_formula(rng, tv, depth - 1),
                               random_formula(rng, tv, depth - 1));
        case 1: return sv_lor(random_formula(rng, tv, depth - 1),
                              random_formula(rng, tv, depth - 1));
        case 2: return sv_lnot(random_formula(rng, tv, depth - 1));
        default: return sv_ite(random_formula(rng, tv, depth - 1),
                               random_formula(rng, tv, depth - 1),
                               random_formula(rng, tv, depth - 1));
    }
}

TEST(SolverDifferential, ModelsSatisfyTheReferenceEvaluator) {
    int sat_seen = 0;
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        std::uint64_t rng = seed * 0x5851f42d4c957f2dull;
        const TestVars tv = make_vars(rng);
        const SExpr formula = random_formula(rng, tv, 3);
        SCOPED_TRACE("seed " + std::to_string(seed) + ": " +
                     verify::sv_to_string(formula));

        verify::Solver solver;
        solver.add(formula);
        const verify::SatResult r = solver.check();
        ASSERT_NE(r, verify::SatResult::unknown);
        if (r != verify::SatResult::sat) continue;
        ++sat_seen;

        RefEval ref;
        for (std::size_t i = 0; i < tv.vars.size(); ++i) {
            ref.env[static_cast<int>(i)] = solver.eval(tv.vars[i]).to_u64();
        }
        EXPECT_EQ(ref.eval(formula), 1u)
            << "solver model does not satisfy the formula per the reference "
               "evaluator";
    }
    // The generator must not degenerate into all-unsat formulas.
    EXPECT_GE(sat_seen, 20);
}

TEST(SolverDifferential, PinnedEnvironmentsAgreeInBothPolarities) {
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        std::uint64_t rng = seed * 0x2545f4914f6cdd1dull;
        const TestVars tv = make_vars(rng);
        const SExpr formula = random_formula(rng, tv, 3);

        RefEval ref;
        for (std::size_t i = 0; i < tv.vars.size(); ++i) {
            ref.env[static_cast<int>(i)] =
                splitmix64(rng) & width_mask(tv.widths[i]);
        }
        const bool expected = ref.eval(formula) != 0;
        SCOPED_TRACE("seed " + std::to_string(seed) + " expected " +
                     (expected ? "sat-positive" : "sat-negative"));

        // With every variable pinned, the formula's truth value is fully
        // determined: the matching polarity must be sat, the opposite unsat.
        for (const bool polarity : {true, false}) {
            verify::Solver solver;
            for (std::size_t i = 0; i < tv.vars.size(); ++i) {
                solver.add(verify::sv_eq(
                    tv.vars[i],
                    verify::sv_const_u(tv.widths[i],
                                       ref.env[static_cast<int>(i)])));
            }
            solver.add(polarity ? formula : verify::sv_lnot(formula));
            const verify::SatResult r = solver.check();
            ASSERT_NE(r, verify::SatResult::unknown);
            EXPECT_EQ(r == verify::SatResult::sat, polarity == expected)
                << "solver disagrees with the reference evaluator under a "
                   "fully pinned environment";
        }
    }
}

// Regression: constraints handed to Solver::add as temporaries (nothing
// else keeping the SExpr alive) must solve identically to long-lived ones.
// The bit-blaster used to key its CNF cache by raw Node pointer, so heap
// address reuse across freed temporaries corrupted later constraints into
// heap-layout-dependent spurious unsat.
TEST(SolverDifferential, TemporaryConstraintLifetimes) {
    using namespace verify;
    const SExpr port = sv_var(0, 9, "port");
    const SExpr len = sv_var(1, 32, "len");
    const SExpr ts = sv_var(2, 48, "ts");

    Solver solver;
    // Each add()'s argument dies immediately; interleaved throwaway terms
    // churn the allocator to encourage node-address reuse.
    solver.add(sv_ult(port, sv_const_u(9, 4)));
    for (int i = 0; i < 64; ++i) {
        (void)sv_eq(sv_const_u(32, static_cast<std::uint64_t>(i)),
                    sv_const_u(32, 30));
    }
    solver.add(sv_eq(len, sv_const_u(32, 30)));
    for (int i = 0; i < 64; ++i) {
        (void)sv_ult(sv_const_u(48, static_cast<std::uint64_t>(i)),
                     sv_const_u(48, 1000));
    }
    solver.add(sv_eq(ts, sv_const_u(48, 1000)));
    ASSERT_EQ(solver.check(), SatResult::sat);
    EXPECT_LT(solver.eval(port).to_u64(), 4u);
    EXPECT_EQ(solver.eval(len).to_u64(), 30u);
    EXPECT_EQ(solver.eval(ts).to_u64(), 1000u);

    // And the genuinely contradictory version must still be unsat.
    Solver contra;
    contra.add(sv_eq(len, sv_const_u(32, 30)));
    contra.add(sv_eq(len, sv_const_u(32, 31)));
    EXPECT_EQ(contra.check(), SatResult::unsat);
}

// --- layer 2: symexec budget truncation surfaces, never silently --------------

TEST(SymExecBudget, PathsExhaustedIsSurfaced) {
    const core::SpecGenerator gen;
    const auto& programs = gen.programs();
    const auto it = std::find(programs.begin(), programs.end(),
                              std::string("ipv4_router"));
    ASSERT_NE(it, programs.end());
    const core::Scenario sc =
        gen.make_for(static_cast<std::size_t>(it - programs.begin()), 1);

    verify::VarPool pool;
    verify::SymExecOptions opts;
    opts.max_paths = 1;
    verify::SymExec exec(*sc.compiled, pool, opts);
    EXPECT_TRUE(exec.explore().paths_exhausted)
        << "a one-path budget on a branching program must report truncation";

    verify::VarPool full_pool;
    verify::SymExec full(*sc.compiled, full_pool);
    EXPECT_FALSE(full.explore().paths_exhausted);

    // The concolic layer forwards the flag (and its no_path outcomes must
    // then read as "not found within budget", never "unreachable").
    verify::ConcolicOptions copts;
    copts.max_paths = 1;
    verify::ConcolicSynthesizer synth(*sc.compiled, copts);
    auto dev = target::make_device("reference");
    const coverage::EdgeIndex index(*sc.compiled, dev->coverage_salt());
    const verify::ConcolicResult result = synth.synthesize(index.sites());
    EXPECT_TRUE(result.paths_exhausted);
}

// --- layer 2: concolic end-to-end under both engines --------------------------

class ConcolicEndToEnd : public ::testing::TestWithParam<dataplane::Engine> {};

INSTANTIATE_TEST_SUITE_P(Engines, ConcolicEndToEnd,
                         ::testing::Values(dataplane::Engine::interpreter,
                                           dataplane::Engine::compiled),
                         [](const auto& info) {
                             return std::string(
                                 dataplane::engine_name(info.param));
                         });

// Builds the replayable recipe for one synthesized seed, exactly as the
// campaign's round-barrier synthesis does.
core::ConcolicRecipe recipe_for(const std::string& program,
                                const verify::ConcolicSeed& seed) {
    core::ConcolicRecipe recipe;
    recipe.program = program;
    recipe.slot = seed.target.slot;
    recipe.ingress_port = seed.ingress_port;
    recipe.packet = seed.packet;
    for (const auto& def : seed.defaults) {
        core::ConcolicRecipe::Default d;
        d.table = def.table;
        d.action = def.action;
        for (const auto& arg : def.args) d.args.push_back(arg.to_bytes());
        recipe.defaults.push_back(std::move(d));
    }
    return recipe;
}

TEST_P(ConcolicEndToEnd, EverySynthesizedSeedLightsItsTargetSlot) {
    const core::SpecGenerator gen;
    const core::Mutator mutator(gen);
    std::size_t seeds_total = 0;

    for (std::size_t pi = 0; pi < gen.programs().size(); ++pi) {
        const std::string& program = gen.programs()[pi];
        SCOPED_TRACE(program);
        const core::Scenario base = gen.make_for(pi, 1);

        auto probe = target::make_device("reference");
        const coverage::EdgeIndex index(*base.compiled,
                                        probe->coverage_salt());
        verify::ConcolicSynthesizer synth(*base.compiled);
        const verify::ConcolicResult result = synth.synthesize(index.sites());
        EXPECT_FALSE(result.paths_exhausted);

        for (const auto& seed : result.seeds) {
            SCOPED_TRACE(seed.target.describe(*base.compiled));
            const core::ConcolicRecipe recipe = recipe_for(program, seed);

            // The recipe text round-trips exactly.
            const std::string text = recipe.encode();
            const auto reparsed = core::ConcolicRecipe::parse(text);
            ASSERT_TRUE(reparsed.has_value()) << text;
            EXPECT_EQ(reparsed->encode(), text);

            // The decoded scenario lights the target slot on a real device.
            const core::Scenario sc = mutator.apply_concolic(*reparsed);
            coverage::CoverageMap map;
            auto dev = target::make_device("reference");
            dev->set_engine(GetParam());
            dev->set_coverage(&map);
            ASSERT_TRUE(dev->load(*sc.compiled));
            for (const auto& op : sc.config) core::apply_config_op(*dev, op);
            core::TestPacketGenerator pgen(sc.spec);
            for (std::uint64_t seq = 1; seq <= sc.spec.count; ++seq) {
                dev->inject(pgen.make_packet(seq, 1'000'000 + (seq - 1) * 672));
            }
            dev->flush();
            EXPECT_GT(map.count(static_cast<std::uint32_t>(seed.target.slot)),
                      0u)
                << "synthesized seed failed to light its target slot";
            ++seeds_total;
        }
    }
    // The catalogue must yield a substantial synthesized corpus: a solver
    // or symexec regression that silently empties it fails here.
    EXPECT_GE(seeds_total, 25u);
}

// --- layer 2: campaign acceptance on the seven-flag fixture -------------------

class ConcolicCampaign : public ::testing::TestWithParam<dataplane::Engine> {};

INSTANTIATE_TEST_SUITE_P(Engines, ConcolicCampaign,
                         ::testing::Values(dataplane::Engine::interpreter,
                                           dataplane::Engine::compiled),
                         [](const auto& info) {
                             return std::string(
                                 dataplane::engine_name(info.param));
                         });

TEST_P(ConcolicCampaign, LightsEdgesDarkUnderPureGreyboxAtEqualBudget) {
    const ndb_test::FlagFixture fx = ndb_test::seven_flag_fixture();
    constexpr std::uint64_t kBudget = 48;

    const auto run = [&](bool concolic, coverage::CoverageMap* map_out) {
        core::CampaignConfig config;
        ndb_test::apply_fixture(fx, config);
        config.engine = GetParam();
        config.scenarios = kBudget;
        config.threads = 2;
        config.mutate = true;
        config.concolic = concolic;
        config.coverage_map_out = map_out;
        core::CampaignEngine engine(config);
        return engine.run();
    };

    coverage::CoverageMap greybox_map;
    const core::CampaignReport greybox = run(false, &greybox_map);
    coverage::CoverageMap concolic_map;
    const core::CampaignReport assisted = run(true, &concolic_map);

    ASSERT_GE(assisted.concolic_injected, 1u) << assisted.to_string();
    EXPECT_EQ(assisted.concolic_mismatched, 0u) << assisted.to_string();
    EXPECT_EQ(assisted.concolic_recipes.size(), assisted.concolic_injected);

    // At least one synthesized target slot stays dark under pure greybox
    // with the identical budget but is lit in the assisted run.
    std::size_t newly_lit = 0;
    for (const std::string& text : assisted.concolic_recipes) {
        const auto recipe = core::ConcolicRecipe::parse(text);
        ASSERT_TRUE(recipe.has_value()) << text;
        const auto slot = static_cast<std::uint32_t>(recipe->slot);
        if (greybox_map.count(slot) == 0 && concolic_map.count(slot) > 0) {
            ++newly_lit;
        }
    }
    EXPECT_GE(newly_lit, 1u)
        << "concolic assistance lit no slot that greybox left dark\n"
        << assisted.to_string();

    // Every injected recipe replays deterministically, alone, to re-light
    // its slot through the single-recipe replay path.
    for (const std::string& text : assisted.concolic_recipes) {
        SCOPED_TRACE(text);
        core::CampaignConfig config;
        ndb_test::apply_fixture(fx, config);
        config.engine = GetParam();
        config.mutation_recipe = text;
        config.coverage = true;
        coverage::CoverageMap replay_map;
        config.coverage_map_out = &replay_map;
        core::CampaignEngine engine(config);
        const core::CampaignReport report = engine.run();
        EXPECT_EQ(report.scenarios_concolic, 1u);
        const auto recipe = core::ConcolicRecipe::parse(text);
        ASSERT_TRUE(recipe.has_value());
        EXPECT_GT(replay_map.count(static_cast<std::uint32_t>(recipe->slot)), 0u)
            << "replayed concolic recipe no longer lights its slot";
    }
}

// The synthesis loop is part of the deterministic report contract: thread
// count must not change a single byte of a concolic campaign's JSON.
TEST(ConcolicCampaign, ReportIsByteIdenticalAcrossThreadCounts) {
    const auto run = [&](int threads) {
        core::CampaignConfig config;
        config.programs = {"ipv4_router", "reject_filter", "acl_firewall"};
        config.scenarios = 32;
        config.threads = threads;
        config.mutate = true;
        config.concolic = true;
        core::CampaignEngine engine(config);
        return engine.run().to_json();
    };
    const std::string one = run(1);
    EXPECT_EQ(one, run(3));
    EXPECT_EQ(one, run(7));
}

}  // namespace
