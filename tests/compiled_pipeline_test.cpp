// Threaded-code engine acceptance: the CompiledPipeline must be a drop-in
// replacement for the tree-walking oracle.
//
//   * compiler determinism -- the same (IR, quirks) always lowers to the
//     byte-identical instruction stream (the image is pointer-free);
//   * interp-vs-compiled differential -- every catalogue program under
//     every quirk-matrix flag and every committed corpus seed produces
//     identical outputs, tap digests, stage/port counters and coverage
//     maps on both engines;
//   * campaign equivalence -- a full mutate-mode campaign report is
//     byte-identical across engines apart from its provenance field.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign.h"
#include "core/generator.h"
#include "core/specgen.h"
#include "coverage/coverage.h"
#include "dataplane/compile.h"
#include "target/device.h"
#include "quirk_fixture.h"

#ifndef NDB_CORPUS_DIR
#error "NDB_CORPUS_DIR must point at tests/corpus"
#endif

namespace {

using namespace ndb;
using dataplane::Engine;

constexpr std::uint64_t kEpochNs = 1'000'000;
constexpr std::uint64_t kSlotNs = 672;

// The quirk matrix: faithful semantics plus each of the seven catalogue
// flags in isolation (same values as the acceptance fixture).
std::vector<std::pair<std::string, dataplane::Quirks>> quirk_matrix() {
    std::vector<std::pair<std::string, dataplane::Quirks>> out;
    out.emplace_back("none", dataplane::Quirks{});
    for (const auto& spec : ndb_test::seven_flag_fixture().duts) {
        out.emplace_back(spec.label, *spec.quirks);
    }
    return out;
}

// Programs worth sweeping: the default fuzzable catalogue plus every
// program the seven-flag fixture pairs with a quirk.
std::vector<std::string> sweep_programs() {
    std::vector<std::string> out = core::SpecGenerator::default_programs();
    for (const auto& name : ndb_test::seven_flag_fixture().programs) {
        if (std::find(out.begin(), out.end(), name) == out.end()) {
            out.push_back(name);
        }
    }
    return out;
}

// Every seed committed to the regression corpus, plus a few fixed ones so
// the sweep never goes empty on a trimmed checkout.
std::vector<std::uint64_t> sweep_seeds() {
    std::set<std::uint64_t> seeds = {1, 7, 42};
    for (const auto& file :
         std::filesystem::directory_iterator(NDB_CORPUS_DIR)) {
        if (file.path().extension() != ".corpus") continue;
        std::ifstream in(file.path());
        std::string line;
        while (std::getline(in, line)) {
            if (line.rfind("seed=", 0) == 0) {
                seeds.insert(std::stoull(line.substr(5)));
            }
        }
    }
    return {seeds.begin(), seeds.end()};
}

// Everything one engine run observably produces.
struct Observation {
    std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> outputs;
    std::vector<dataplane::TapDigest> digests;
    coverage::CoverageMap coverage;
    std::string snapshot;
};

Observation run_scenario(const core::Scenario& sc, Engine engine,
                         const dataplane::Quirks& quirks) {
    target::DeviceConfig dc;
    dc.quirks = quirks;
    dc.engine = engine;  // load()-time selection, not set_engine()
    auto dev = target::make_reference_device(std::move(dc));
    EXPECT_EQ(dev->engine(), engine);

    Observation obs;
    dev->set_coverage(&obs.coverage);
    dev->set_digests_enabled(true);
    EXPECT_TRUE(dev->load(*sc.compiled).ok);
    for (const auto& op : sc.config) core::apply_config_op(*dev, op);

    core::TestPacketGenerator pgen(sc.spec);
    std::vector<packet::Packet> drained;
    for (std::uint64_t seq = 1; seq <= sc.spec.count; ++seq) {
        dev->inject(pgen.make_packet(seq, kEpochNs + (seq - 1) * kSlotNs));
        for (int p = 0; p < dev->config().num_ports; ++p) {
            drained.clear();
            dev->drain_port_into(static_cast<std::uint32_t>(p), drained);
            for (const auto& pkt : drained) {
                const auto bytes = pkt.bytes();
                obs.outputs.emplace_back(
                    static_cast<std::uint32_t>(p),
                    std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
            }
        }
    }
    obs.digests = dev->take_digest_records();
    obs.snapshot = dev->snapshot().to_string();
    return obs;
}

TEST(CompiledProgram, CompilationIsDeterministic) {
    for (const auto& name : sweep_programs()) {
        SCOPED_TRACE(name);
        const core::SpecGenerator gen({name});
        const core::Scenario sc = gen.make(/*seed=*/1);
        for (const auto& [label, quirks] : quirk_matrix()) {
            SCOPED_TRACE(label);
            const auto a = dataplane::compile(*sc.compiled, quirks);
            const auto b = dataplane::compile(*sc.compiled, quirks);
            ASSERT_FALSE(a.code.empty());
            EXPECT_TRUE(a == b) << "same (IR, quirks) compiled to different "
                                   "instruction streams";
            EXPECT_EQ(a.disassemble(), b.disassemble());
        }
    }
}

TEST(CompiledProgram, QuirksChangeTheImageOnlyWhenTheyChangeSemantics) {
    const core::SpecGenerator gen({"shift_mangler"});
    const core::Scenario sc = gen.make(/*seed=*/1);
    dataplane::Quirks miscompiled;
    miscompiled.shift_miscompile = true;
    const auto faithful = dataplane::compile(*sc.compiled, {});
    const auto quirked = dataplane::compile(*sc.compiled, miscompiled);
    EXPECT_FALSE(faithful == quirked)
        << "shift_miscompile must be baked into the instruction stream";
    // A purely runtime quirk leaves the image untouched.
    dataplane::Quirks runtime_only;
    runtime_only.reject_as_accept = true;
    EXPECT_TRUE(faithful == dataplane::compile(*sc.compiled, runtime_only));
}

// The tentpole acceptance sweep: all catalogue programs x the full quirk
// matrix x every corpus seed, asserting engine-identical observations.
TEST(CompiledDifferential, MatchesInterpreterOverCatalogueQuirksAndSeeds) {
    const auto programs = sweep_programs();
    const auto matrix = quirk_matrix();
    const auto seeds = sweep_seeds();
    ASSERT_GE(seeds.size(), 3u);

    for (const auto& name : programs) {
        const core::SpecGenerator gen({name});
        for (const std::uint64_t seed : seeds) {
            const core::Scenario sc = gen.make(seed);
            for (const auto& [label, quirks] : matrix) {
                SCOPED_TRACE(name + "/" + label + "/seed=" +
                             std::to_string(seed));
                const Observation interp =
                    run_scenario(sc, Engine::interpreter, quirks);
                const Observation compiled =
                    run_scenario(sc, Engine::compiled, quirks);
                ASSERT_EQ(interp.outputs, compiled.outputs);
                ASSERT_EQ(interp.digests.size(), compiled.digests.size());
                for (std::size_t i = 0; i < interp.digests.size(); ++i) {
                    ASSERT_TRUE(interp.digests[i] == compiled.digests[i])
                        << "tap digest " << i << " diverged";
                }
                ASSERT_EQ(interp.snapshot, compiled.snapshot);
                ASSERT_TRUE(interp.coverage == compiled.coverage)
                    << "coverage maps diverged";
            }
        }
    }
}

TEST(CompiledDifferential, EngineSwitchSurvivesLoadAndAgreesMidstream) {
    const core::SpecGenerator gen({"ipv4_router"});
    const core::Scenario sc = gen.make(/*seed=*/3);

    auto dev = target::make_reference_device({});
    dev->set_engine(Engine::compiled);
    ASSERT_TRUE(dev->load(*sc.compiled).ok);
    EXPECT_EQ(dev->engine(), Engine::compiled);  // survived the load()
    for (const auto& op : sc.config) core::apply_config_op(*dev, op);

    core::TestPacketGenerator pgen(sc.spec);
    const packet::Packet probe = pgen.make_packet(1, kEpochNs);

    const auto outputs_once = [&](Engine engine) {
        dev->set_engine(engine);
        dev->flush();
        dev->inject(probe);
        std::vector<std::vector<std::uint8_t>> out;
        for (int p = 0; p < dev->config().num_ports; ++p) {
            for (const auto& pkt :
                 dev->drain_port(static_cast<std::uint32_t>(p))) {
                const auto bytes = pkt.bytes();
                out.emplace_back(bytes.begin(), bytes.end());
            }
        }
        return out;
    };
    // Same device, same loaded image, flipped engine mid-stream: identical
    // forwarding behaviour (stateful externs see an identical history).
    EXPECT_EQ(outputs_once(Engine::compiled), outputs_once(Engine::interpreter));
    EXPECT_EQ(outputs_once(Engine::interpreter), outputs_once(Engine::compiled));
}

TEST(CompiledDifferential, MutateCampaignReportByteIdenticalAcrossEngines) {
    const ndb_test::FlagFixture fx = ndb_test::seven_flag_fixture();

    const auto run_with = [&](Engine engine) {
        core::CampaignConfig cfg;
        cfg.base_seed = 11;
        cfg.scenarios = 24;
        cfg.threads = 2;
        cfg.mutate = true;  // implies coverage-guided scheduling
        cfg.corpus_dir = NDB_CORPUS_DIR;
        ndb_test::apply_fixture(fx, cfg);
        cfg.engine = engine;
        core::CampaignEngine campaign(cfg);
        return campaign.run();
    };

    const core::CampaignReport interp = run_with(Engine::interpreter);
    const core::CampaignReport compiled = run_with(Engine::compiled);
    EXPECT_EQ(interp.engine, "interpreter");
    EXPECT_EQ(compiled.engine, "compiled");

    // The reports must agree byte for byte once the one provenance field is
    // equalized.
    std::string a = interp.to_json();
    const std::string needle = "\"engine\": \"interpreter\"";
    const auto pos = a.find(needle);
    ASSERT_NE(pos, std::string::npos);
    a.replace(pos, needle.size(), "\"engine\": \"compiled\"");
    EXPECT_EQ(a, compiled.to_json());
}

}  // namespace
