// Mutation-engine contracts: recipe text round-trips, corpus loading and
// dedup, deterministic derive/apply, splice semantics, byte-identical
// mutate-mode reports across thread counts, recipe-based replay of every
// mutated divergence, soak recipe lines, and the acceptance sweep: the
// mutation-guided campaign discovers all seven quirk fingerprints within
// the fresh-seed guided budget with DUT coverage visibly contributing.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/mutate.h"
#include "core/soak.h"
#include "core/specgen.h"
#include "core/testspec.h"
#include "quirk_fixture.h"

#ifndef NDB_CORPUS_DIR
#error "NDB_CORPUS_DIR must point at tests/corpus"
#endif

namespace {

using namespace ndb;

TEST(MutationRecipe, EncodeParseRoundTrip) {
    core::MutationRecipe recipe;
    recipe.program = "reject_filter";
    recipe.parent_seed = 42;
    recipe.ops = {
        {core::MutationOp::Kind::field_flip, 3, 0xdeadbeefull},
        {core::MutationOp::Kind::field_boundary, 1, 2},
        {core::MutationOp::Kind::packet_byte, 17, 255},
        {core::MutationOp::Kind::config_drop, 2, 0},
        {core::MutationOp::Kind::config_dup, 0, 4},
        {core::MutationOp::Kind::config_swap, 1, 3},
        {core::MutationOp::Kind::splice, 2, 977},
    };

    const std::string text = recipe.encode();
    EXPECT_EQ(text.substr(0, text.find('|')), "reject_filter#42");

    const auto parsed = core::MutationRecipe::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(parsed->program, recipe.program);
    EXPECT_EQ(parsed->parent_seed, recipe.parent_seed);
    ASSERT_EQ(parsed->ops.size(), recipe.ops.size());
    for (std::size_t i = 0; i < recipe.ops.size(); ++i) {
        EXPECT_EQ(parsed->ops[i].kind, recipe.ops[i].kind) << "op " << i;
        EXPECT_EQ(parsed->ops[i].a, recipe.ops[i].a) << "op " << i;
        EXPECT_EQ(parsed->ops[i].b, recipe.ops[i].b) << "op " << i;
    }
    EXPECT_EQ(parsed->encode(), text);

    // Junk must be rejected, not half-parsed.
    EXPECT_FALSE(core::MutationRecipe::parse(""));
    EXPECT_FALSE(core::MutationRecipe::parse("no_seed_marker"));
    EXPECT_FALSE(core::MutationRecipe::parse("prog#notanumber"));
    EXPECT_FALSE(core::MutationRecipe::parse("prog#1|unknown_op:1:2"));
    EXPECT_FALSE(core::MutationRecipe::parse("prog#1|flip:abc:2"));
    EXPECT_FALSE(core::MutationRecipe::parse("#1|flip:1:2"));
    // A truncated op (missing second operand) must fail, not replay a
    // different mutation with b=0.
    EXPECT_FALSE(core::MutationRecipe::parse("prog#1|flip:1"));
    EXPECT_FALSE(core::MutationRecipe::parse("prog#1|bound:13289271728200100208"));
    // Overflowing operands must fail too, not wrap mod 2^64 onto a
    // different mutation.
    EXPECT_FALSE(core::MutationRecipe::parse("prog#1|byte:99999999999999999999999:1"));
    EXPECT_FALSE(core::MutationRecipe::parse("prog#99999999999999999999999|byte:1:1"));
    // 2^64-1 itself is the largest legal operand.
    EXPECT_TRUE(core::MutationRecipe::parse("prog#1|byte:18446744073709551615:1"));
    EXPECT_FALSE(core::MutationRecipe::parse("prog#1|byte:18446744073709551616:1"));
}

TEST(ScenarioCorpus, AddDedupAndLoadDir) {
    core::ScenarioCorpus corpus;
    EXPECT_TRUE(corpus.add("reject_filter", 1));
    EXPECT_FALSE(corpus.add("reject_filter", 1));  // identical triple
    EXPECT_TRUE(corpus.add("reject_filter", 1, "reject_filter#1|byte:3:7"));
    EXPECT_TRUE(corpus.add("deep_parser", 9));
    EXPECT_EQ(corpus.size(), 3u);
    EXPECT_EQ(corpus.entries("reject_filter").size(), 2u);
    EXPECT_EQ(corpus.entries("deep_parser").size(), 1u);
    EXPECT_TRUE(corpus.entries("unknown").empty());

    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "ndb_mutate_corpus_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const auto write = [&dir](const char* name, const std::string& body) {
        std::ofstream out(dir / name);
        out << body;
    };
    write("a_fresh.corpus", "# c\nseed=5\nprogram=reject_filter\nbackend=sdnet\n");
    write("b_mutant.corpus",
          "seed=5\nprogram=reject_filter\nmutate=reject_filter#5|byte:2:9\n");
    write("c_other.corpus", "seed=3\nprogram=deep_parser\n");
    write("d_badrecipe.corpus", "seed=4\nprogram=reject_filter\nmutate=junk\n");
    // Recipe naming a different program than the entry: inconsistent file,
    // must be skipped or a worker would throw at apply() time.
    write("e_mismatch.corpus",
          "seed=6\nprogram=reject_filter\nmutate=deep_parser#6|byte:1:1\n");
    // Damaged seed lines (overflow, trailing junk) must skip the entry,
    // not load a different parent seed.
    write("f_badseed.corpus",
          "seed=18446744073709551616\nprogram=reject_filter\n");
    write("g_junkseed.corpus", "seed=7junk\nprogram=reject_filter\n");
    write("ignored.txt", "seed=9\nprogram=reject_filter\n");

    core::ScenarioCorpus loaded;
    // deep_parser filtered out: this campaign only fuzzes reject_filter.
    EXPECT_EQ(loaded.load_dir(dir.string(), {"reject_filter"}), 2u);
    ASSERT_EQ(loaded.entries("reject_filter").size(), 2u);
    EXPECT_TRUE(loaded.entries("reject_filter")[0].recipe.empty());
    EXPECT_EQ(loaded.entries("reject_filter")[1].recipe,
              "reject_filter#5|byte:2:9");
    EXPECT_TRUE(loaded.entries("deep_parser").empty());

    // Missing directory is not an error.
    core::ScenarioCorpus none;
    EXPECT_EQ(none.load_dir((dir / "nope").string(), {"reject_filter"}), 0u);

    std::filesystem::remove_all(dir);
}

TEST(ConcolicRecipe, EncodeParseRoundTripAndStrictRejection) {
    core::ConcolicRecipe recipe;
    recipe.program = "deep_parser";
    recipe.slot = 2044;
    recipe.ingress_port = 3;
    recipe.packet = {0x88, 0x47, 0x00, 0x01};
    recipe.defaults.push_back({"label_fib", "pop_forward", {{0x01, 0xff}}});
    recipe.defaults.push_back({"other", "NoAction", {}});

    const std::string text = recipe.encode();
    const auto parsed = core::ConcolicRecipe::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(parsed->program, recipe.program);
    EXPECT_EQ(parsed->slot, recipe.slot);
    EXPECT_EQ(parsed->ingress_port, recipe.ingress_port);
    EXPECT_EQ(parsed->packet, recipe.packet);
    ASSERT_EQ(parsed->defaults.size(), 2u);
    EXPECT_EQ(parsed->defaults[0].args, recipe.defaults[0].args);
    EXPECT_EQ(parsed->encode(), text);

    // A mutation recipe never parses as concolic and vice versa: the two
    // grammars have different head separators.
    EXPECT_FALSE(core::ConcolicRecipe::parse("prog#1|byte:3:7"));
    EXPECT_FALSE(core::MutationRecipe::parse(text));

    // Every structural defect rejects the whole text.
    EXPECT_FALSE(core::ConcolicRecipe::parse(""));
    EXPECT_FALSE(core::ConcolicRecipe::parse("deep_parser"));
    EXPECT_FALSE(core::ConcolicRecipe::parse("@7|port:0|pkt:00"));       // no program
    EXPECT_FALSE(core::ConcolicRecipe::parse("p@x|port:0|pkt:00"));      // bad slot
    EXPECT_FALSE(core::ConcolicRecipe::parse("p@7|port:z|pkt:00"));      // bad port
    EXPECT_FALSE(core::ConcolicRecipe::parse("p@7|pkt:00"));             // no port
    EXPECT_FALSE(core::ConcolicRecipe::parse("p@7|port:0"));             // no packet
    EXPECT_FALSE(core::ConcolicRecipe::parse("p@7|port:0|pkt:0"));       // odd hex
    EXPECT_FALSE(core::ConcolicRecipe::parse("p@7|port:0|pkt:0g"));      // non-hex
    EXPECT_FALSE(core::ConcolicRecipe::parse("p@7|port:0|pkt:00|def:"));  // empty def
    EXPECT_FALSE(core::ConcolicRecipe::parse("p@7|port:0|pkt:00|def:t"));  // no action
    EXPECT_FALSE(core::ConcolicRecipe::parse("p@7|port:0|pkt:00|def:t:a:xyz"));
    EXPECT_FALSE(core::ConcolicRecipe::parse("p@7|port:0|pkt:00|bogus:1"));
}

// Adversarial `.corpus` inputs: every malformed file is rejected with a
// diagnostic -- never a crash, never a silent skip.
TEST(ScenarioCorpus, MalformedFilesAreRejectedWithDiagnostics) {
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "ndb_corpus_adversarial_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const auto write = [&dir](const char* name, const std::string& body) {
        std::ofstream out(dir / name);
        out << body;
    };

    // One valid concolic entry rides along to prove loading still works.
    write("a_good.corpus",
          "seed=7\nprogram=reject_filter\nconcolic=reject_filter@7|port:0|pkt:0088\n");
    write("b_no_separator.corpus", "seed=1\nprogram=reject_filter\njunk line\n");
    write("c_unknown_key.corpus", "seed=1\nprogram=reject_filter\ncolor=red\n");
    write("d_missing_seed.corpus", "program=reject_filter\n");
    write("e_bad_concolic.corpus",
          "seed=1\nprogram=reject_filter\nconcolic=reject_filter@1|port:0|pkt:0g\n");
    write("f_both_kinds.corpus",
          "seed=1\nprogram=reject_filter\nmutate=reject_filter#1|byte:1:1\n"
          "concolic=reject_filter@1|port:0|pkt:00\n");
    write("g_wrong_program.corpus",
          "seed=1\nprogram=reject_filter\nconcolic=deep_parser@1|port:0|pkt:00\n");
    write("h_slot_mismatch.corpus",
          "seed=2\nprogram=reject_filter\nconcolic=reject_filter@1|port:0|pkt:00\n");
    write("i_truncated.corpus", "seed=\nprogram=reject_filter\n");
    write("j_binary_noise.corpus", "\x01\x02\xff\xfe no equals\n");

    core::ScenarioCorpus corpus;
    EXPECT_EQ(corpus.load_dir(dir.string(), {"reject_filter"}), 1u);
    ASSERT_EQ(corpus.entries("reject_filter").size(), 1u);
    EXPECT_TRUE(corpus.entries("reject_filter")[0].concolic);
    EXPECT_EQ(corpus.entries("reject_filter")[0].seed, 7u);

    // One diagnostic per damaged file, in file order, naming the file.
    const auto& diags = corpus.diagnostics();
    ASSERT_EQ(diags.size(), 9u);
    const char* expect_prefix[] = {
        "b_no_separator.corpus", "c_unknown_key.corpus",
        "d_missing_seed.corpus", "e_bad_concolic.corpus",
        "f_both_kinds.corpus",   "g_wrong_program.corpus",
        "h_slot_mismatch.corpus", "i_truncated.corpus",
        "j_binary_noise.corpus",
    };
    for (std::size_t i = 0; i < diags.size(); ++i) {
        EXPECT_EQ(diags[i].rfind(expect_prefix[i], 0), 0u) << diags[i];
    }

    // A later clean load clears the previous run's diagnostics.
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    EXPECT_EQ(corpus.load_dir(dir.string(), {"reject_filter"}), 0u);
    EXPECT_TRUE(corpus.diagnostics().empty());
    std::filesystem::remove_all(dir);
}

TEST(Mutator, DeriveAndApplyAreDeterministic) {
    const core::SpecGenerator gen;
    const core::Mutator mutator(gen);
    core::ScenarioCorpus corpus;
    corpus.add("l2_switch", 3);
    corpus.add("l2_switch", 11);
    corpus.add("l2_switch", 19);

    const core::CorpusEntry& parent = corpus.entries("l2_switch")[0];
    const core::MutationRecipe a = mutator.derive(corpus, parent, 101);
    const core::MutationRecipe b = mutator.derive(corpus, parent, 101);
    EXPECT_EQ(a.encode(), b.encode());
    EXPECT_FALSE(a.ops.empty());
    EXPECT_EQ(a.program, "l2_switch");
    EXPECT_EQ(a.parent_seed, 3u);

    // Different seeds derive different recipes (with overwhelming
    // probability over the havoc operand space).
    const core::MutationRecipe c = mutator.derive(corpus, parent, 102);
    EXPECT_NE(a.encode(), c.encode());

    // apply() is a pure function of the recipe: byte-identical packet
    // streams and config shapes on every call.
    const core::Scenario s1 = mutator.apply(a);
    const core::Scenario s2 = mutator.apply(a);
    EXPECT_EQ(s1.program, "l2_switch");
    EXPECT_EQ(s1.seed, 3u);
    EXPECT_EQ(s1.config.size(), s2.config.size());
    ASSERT_EQ(s1.spec.count, s2.spec.count);
    for (std::uint64_t seq = 1; seq <= s1.spec.count; ++seq) {
        EXPECT_TRUE(core::instantiate(s1.spec.tmpl, seq)
                        .same_bytes(core::instantiate(s2.spec.tmpl, seq)));
    }

    // Chaining: deriving from a mutant parent inherits and extends its
    // ops.  A new splice (if drawn) goes to the *front* of the chain, so
    // the inherited ops must appear contiguously at offset 0 or 1.
    core::CorpusEntry mutant{"l2_switch", a.parent_seed, a.encode()};
    const core::MutationRecipe chained = mutator.derive(corpus, mutant, 103);
    EXPECT_GT(chained.ops.size(), a.ops.size());
    EXPECT_LE(chained.ops.size(), core::Mutator::kMaxChainOps);
    EXPECT_EQ(chained.parent_seed, a.parent_seed);
    const auto inherited_at = [&](std::size_t off) {
        if (off + a.ops.size() > chained.ops.size()) return false;
        for (std::size_t i = 0; i < a.ops.size(); ++i) {
            const core::MutationOp& got = chained.ops[off + i];
            const core::MutationOp& want = a.ops[i];
            if (got.kind != want.kind || got.a != want.a || got.b != want.b) {
                return false;
            }
        }
        return true;
    };
    EXPECT_TRUE(inherited_at(0) || inherited_at(1)) << chained.encode();

    // Chains that could overflow kMaxChainOps restart from the root
    // parent: a recipe is never longer than the documented cap.
    core::MutationRecipe longr;
    longr.program = "l2_switch";
    longr.parent_seed = 3;
    longr.ops.assign(core::Mutator::kMaxChainOps - 1,
                     {core::MutationOp::Kind::packet_byte, 1, 1});
    core::CorpusEntry capped{"l2_switch", 3, longr.encode()};
    const core::MutationRecipe restarted = mutator.derive(corpus, capped, 104);
    EXPECT_LE(restarted.ops.size(), core::Mutator::kMaxOpsPerDerive);
    EXPECT_EQ(restarted.parent_seed, 3u);

    // At most one splice per chain: a second one would wipe the first
    // donor's packet plan and degrade to a config trim.
    core::MutationRecipe spliced;
    spliced.program = "l2_switch";
    spliced.parent_seed = 3;
    spliced.ops = {{core::MutationOp::Kind::splice, 2, 11}};
    core::CorpusEntry splice_parent{"l2_switch", 3, spliced.encode()};
    for (std::uint64_t seed = 200; seed < 230; ++seed) {
        const core::MutationRecipe r =
            mutator.derive(corpus, splice_parent, seed);
        const auto splices = std::count_if(
            r.ops.begin(), r.ops.end(), [](const core::MutationOp& op) {
                return op.kind == core::MutationOp::Kind::splice;
            });
        EXPECT_LE(splices, 1) << r.encode();
    }

    // Unknown program: apply must throw, not mis-replay.
    core::MutationRecipe bad = a;
    bad.program = "no_such_program";
    EXPECT_THROW(mutator.apply(bad), std::invalid_argument);
}

TEST(Mutator, SpliceCrossesConfigPrefixWithDonorPacketPlan) {
    const core::SpecGenerator gen({"l2_switch"});
    const core::Mutator mutator(gen);

    const core::Scenario parent = gen.make_for(0, 3);
    const core::Scenario donor = gen.make_for(0, 11);
    ASSERT_FALSE(parent.config.empty());

    core::MutationRecipe recipe;
    recipe.program = "l2_switch";
    recipe.parent_seed = 3;
    recipe.ops = {{core::MutationOp::Kind::splice, 1, 11}};

    const core::Scenario spliced = mutator.apply(recipe);
    // Config: exactly the parent's length-1 prefix.
    ASSERT_EQ(spliced.config.size(), 1u);
    EXPECT_EQ(spliced.config[0].target, parent.config[0].target);
    // Packet plan: the donor's, byte for byte.
    ASSERT_EQ(spliced.spec.count, donor.spec.count);
    EXPECT_EQ(spliced.spec.inject_port, donor.spec.inject_port);
    for (std::uint64_t seq = 1; seq <= donor.spec.count; ++seq) {
        EXPECT_TRUE(core::instantiate(spliced.spec.tmpl, seq)
                        .same_bytes(core::instantiate(donor.spec.tmpl, seq)));
    }
}

core::CampaignConfig mutate_config(std::uint64_t scenarios, int threads) {
    core::CampaignConfig config;
    config.base_seed = 7;
    config.scenarios = scenarios;
    config.threads = threads;
    config.mutate = true;  // implies coverage
    config.corpus_dir = NDB_CORPUS_DIR;
    config.duts = {core::BackendSpec{"sdnet", std::nullopt, "sdnet"}};
    return config;
}

TEST(MutateCampaign, ReportByteIdenticalAcrossThreadCounts) {
    core::CampaignEngine one(mutate_config(60, 1));
    core::CampaignEngine four(mutate_config(60, 4));
    const core::CampaignReport r1 = one.run();
    const core::CampaignReport r4 = four.run();
    EXPECT_TRUE(r1.coverage_enabled);
    EXPECT_GT(r1.scenarios_mutated, 0u);
    EXPECT_FALSE(r1.divergences.empty());
    EXPECT_EQ(r1.to_json(), r4.to_json());
}

TEST(MutateCampaign, EveryMutatedDivergenceReplaysFromItsRecipe) {
    // Preloading the corpus and forcing mutation_rate=1 makes every slot a
    // mutant, so every reported divergence must carry a parentage recipe --
    // and each recipe must reproduce its divergence through the
    // single-scenario replay path.
    core::CampaignConfig config = mutate_config(24, 2);
    config.programs = {"reject_filter"};
    config.mutation_rate = 1.0;
    core::CampaignEngine engine(config);
    const core::CampaignReport report = engine.run();

    EXPECT_EQ(report.scenarios_mutated, report.scenarios);
    ASSERT_FALSE(report.divergences.empty()) << report.to_string();

    for (const auto& d : report.divergences) {
        SCOPED_TRACE(d.fingerprint);
        ASSERT_FALSE(d.recipe.empty()) << "mutated divergence lost its recipe";
        const auto parsed = core::MutationRecipe::parse(d.recipe);
        ASSERT_TRUE(parsed.has_value()) << d.recipe;
        EXPECT_EQ(parsed->parent_seed, d.seed);

        core::CampaignConfig replay;
        replay.scenarios = 1;
        replay.threads = 1;
        replay.programs = {d.program};
        replay.duts = {core::BackendSpec{"sdnet", std::nullopt, "sdnet"}};
        replay.mutation_recipe = d.recipe;
        core::CampaignEngine replayer(replay);
        const core::CampaignReport rr = replayer.run();
        ASSERT_EQ(rr.divergences.size(), 1u) << rr.to_string();
        EXPECT_EQ(rr.divergences[0].fingerprint, d.fingerprint);
        EXPECT_EQ(rr.divergences[0].recipe, d.recipe);
        EXPECT_TRUE(rr.divergences[0].minimized_reproduces);
    }
}

// --- the seven-flag acceptance sweep (tests/quirk_fixture.h) ------------------

TEST(MutateCampaign, FindsAllSevenWithinGuidedBudgetAndDutCoverageContributes) {
    const ndb_test::FlagFixture fx = ndb_test::seven_flag_fixture();

    // PR 4's fresh-seed guided mode: the budget bar mutation must meet.
    core::CampaignConfig guided;
    guided.base_seed = 1;
    guided.scenarios = 128;
    guided.threads = 2;
    ndb_test::apply_fixture(fx, guided);
    guided.coverage = true;
    core::CampaignEngine guided_engine(guided);
    const core::CampaignReport guided_report = guided_engine.run();
    const std::uint64_t guided_budget =
        ndb_test::budget_to_all_seven(guided_report, fx);
    ASSERT_GT(guided_budget, 0u)
        << "fresh-seed guided mode never found all seven flags:\n"
        << guided_report.to_string();

    // Mutation-guided mode, given exactly that budget, must also surface
    // all seven fingerprints in no more scenario executions.
    core::CampaignConfig mutated = guided;
    mutated.mutate = true;
    mutated.scenarios = guided_budget;
    core::CampaignEngine mutated_engine(mutated);
    const core::CampaignReport mutated_report = mutated_engine.run();

    std::set<std::string> found;
    for (const auto& d : mutated_report.divergences) found.insert(d.backend);
    EXPECT_EQ(found.size(), fx.duts.size())
        << "mutation-guided mode missed flags within the guided budget of "
        << guided_budget << " scenarios:\n"
        << mutated_report.to_string();

    const std::uint64_t mutated_budget =
        ndb_test::budget_to_all_seven(mutated_report, fx);
    ASSERT_GT(mutated_budget, 0u);
    EXPECT_LE(mutated_budget, guided_budget);

    // DUT coverage feedback must visibly contribute: the merged edge count
    // exceeds what the reference maps alone discovered, and at least one
    // quirked backend's salted map added edges of its own.
    EXPECT_GT(mutated_report.coverage_edges,
              mutated_report.coverage_edges_reference);
    ASSERT_EQ(mutated_report.coverage_edges_dut.size(),
              mutated_report.backends.size());
    std::uint64_t best_dut = 0;
    for (const auto edges : mutated_report.coverage_edges_dut) {
        best_dut = std::max(best_dut, edges);
    }
    EXPECT_GT(best_dut, 0u);
}

TEST(Soak, MutantRecipesCarryAMutateLine) {
    core::CampaignReport report;
    core::DivergenceRecord rec;
    rec.seed = 1;
    rec.backend = "sdnet";
    rec.program = "reject_filter";
    rec.quirk_signature = "reject_as_accept";
    rec.recipe = "reject_filter#1|byte:3:7";
    rec.fingerprint = "sdnet|reject_as_accept|parser";
    rec.minimized_count = 1;
    rec.minimized_reproduces = true;
    report.divergences.push_back(rec);

    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "ndb_mutate_soak_test";
    std::filesystem::remove_all(dir);
    const core::SoakResult grown =
        core::append_unique_corpus_entries(report, dir.string());
    ASSERT_EQ(grown.written.size(), 1u);

    std::ifstream in(dir / grown.written[0]);
    std::string line, mutate;
    while (std::getline(in, line)) {
        if (line.rfind("mutate=", 0) == 0) mutate = line.substr(7);
    }
    EXPECT_EQ(mutate, rec.recipe);
    std::filesystem::remove_all(dir);
}

}  // namespace
