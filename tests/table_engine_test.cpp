// Differential property tests for the indexed table engines: for random
// insert/delete/lookup sequences, the indexed exact/LPM/ternary engines
// must agree operation-for-operation with the retained naive reference
// implementations -- including the ternary_priority_inverted quirk and
// capacity (table_size_clamp style) limits.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dataplane/tables.h"
#include "util/random.h"

namespace {

using namespace ndb;
using dataplane::ActionEntry;
using dataplane::InsertStatus;
using dataplane::MatchEngine;
using dataplane::TableEntry;
using util::Bitvec;
using util::Rng;

Bitvec random_value(Rng& rng, int width) {
    Bitvec v(width);
    for (int i = 0; i < width; i += 64) {
        const int chunk = std::min(64, width - i);
        const std::uint64_t bits = rng.next_u64();
        for (int b = 0; b < chunk; ++b) {
            if ((bits >> b) & 1) v.set_bit(i + b, true);
        }
    }
    return v;
}

// Key layouts under test: a mix of single- and multi-element keys, narrow
// and wider than one machine word.
struct KeyShape {
    std::vector<int> widths;
    int total() const {
        int t = 0;
        for (const int w : widths) t += w;
        return t;
    }
};

const std::vector<KeyShape> kShapes = {
    {{16}}, {{48}}, {{9, 16, 7}}, {{48, 48, 32, 32, 8}},  // 168-bit wide_match-like
};

std::vector<Bitvec> random_keys(Rng& rng, const KeyShape& shape) {
    std::vector<Bitvec> keys;
    keys.reserve(shape.widths.size());
    for (const int w : shape.widths) {
        // Small value space so operations collide often (dups, re-deletes).
        if (rng.next_bool(0.5)) {
            keys.push_back(Bitvec(w, rng.next_below(16)));
        } else {
            keys.push_back(random_value(rng, w));
        }
    }
    return keys;
}

void expect_same_lookup(const MatchEngine& indexed, const MatchEngine& naive,
                        std::span<const Bitvec> keys, const char* what) {
    const ActionEntry* a = indexed.lookup(keys);
    const ActionEntry* b = naive.lookup(keys);
    ASSERT_EQ(a != nullptr, b != nullptr) << what << ": hit/miss disagreement";
    if (a && b) {
        EXPECT_EQ(a->action_id, b->action_id) << what;
        EXPECT_EQ(a->args.size(), b->args.size()) << what;
        for (std::size_t i = 0; i < a->args.size() && i < b->args.size(); ++i) {
            EXPECT_EQ(a->args[i], b->args[i]) << what;
        }
    }
}

void drive_pair(MatchEngine& indexed, MatchEngine& naive, Rng& rng,
                const KeyShape& shape, bool lpm, bool ternary, const char* what) {
    for (int op = 0; op < 600; ++op) {
        TableEntry e;
        e.key_values = random_keys(rng, shape);
        if (lpm) {
            e.prefix_len = static_cast<int>(rng.next_below(
                static_cast<std::uint64_t>(shape.total()) + 1));
        }
        if (ternary) {
            if (rng.next_bool(0.7)) {
                for (const int w : shape.widths) {
                    // Byte-ish masks make overlapping rows likely.
                    e.key_masks.push_back(
                        rng.next_bool(0.3) ? Bitvec::ones(w) : random_value(rng, w));
                }
            }
            e.priority = static_cast<int>(rng.next_below(6));
        }
        e.action_id = static_cast<int>(rng.next_below(8));
        e.action_args = {Bitvec(9, rng.next_below(4))};

        const double roll = rng.next_double();
        if (roll < 0.45) {
            EXPECT_EQ(indexed.insert(e), naive.insert(e)) << what << " op " << op;
        } else if (roll < 0.6) {
            EXPECT_EQ(indexed.erase(e), naive.erase(e)) << what << " op " << op;
        } else {
            expect_same_lookup(indexed, naive, e.key_values, what);
        }
        ASSERT_EQ(indexed.entry_count(), naive.entry_count()) << what << " op " << op;
    }
    // Final sweep: a fresh batch of probes against the settled tables.
    for (int probe = 0; probe < 200; ++probe) {
        const auto keys = random_keys(rng, shape);
        expect_same_lookup(indexed, naive, keys, what);
    }
}

TEST(TableEngineDifferential, ExactMatchesNaive) {
    for (const auto& shape : kShapes) {
        for (const std::size_t capacity : {4ul, 1024ul}) {
            Rng rng(shape.total() * 1000 + capacity);
            auto indexed = dataplane::make_exact_engine(shape.total(), capacity);
            auto naive = dataplane::make_naive_exact_engine(shape.total(), capacity);
            drive_pair(*indexed, *naive, rng, shape, false, false, "exact");
        }
    }
}

TEST(TableEngineDifferential, LpmMatchesNaive) {
    // LPM tables have a single key element.
    for (const int width : {16, 32, 48}) {
        for (const std::size_t capacity : {4ul, 1024ul}) {
            Rng rng(width * 1000 + capacity);
            const KeyShape shape{{width}};
            auto indexed = dataplane::make_lpm_engine(width, capacity);
            auto naive = dataplane::make_naive_lpm_engine(width, capacity);
            drive_pair(*indexed, *naive, rng, shape, true, false, "lpm");
        }
    }
}

TEST(TableEngineDifferential, TernaryMatchesNaiveUnderBothPriorityOrders) {
    for (const auto& shape : kShapes) {
        for (const bool inverted : {false, true}) {
            for (const std::size_t capacity : {8ul, 256ul}) {
                Rng rng(shape.total() * 1000 + capacity + (inverted ? 7 : 0));
                auto indexed =
                    dataplane::make_ternary_engine(shape.total(), capacity, inverted);
                auto naive = dataplane::make_naive_ternary_engine(shape.total(),
                                                                  capacity, inverted);
                drive_pair(*indexed, *naive, rng, shape, false, true,
                           inverted ? "ternary(inverted)" : "ternary");
            }
        }
    }
}

TEST(TableEngineDifferential, ClearResetsBothFamilies) {
    const KeyShape shape{{32}};
    Rng rng(99);
    auto indexed = dataplane::make_exact_engine(32, 64);
    auto naive = dataplane::make_naive_exact_engine(32, 64);
    drive_pair(*indexed, *naive, rng, shape, false, false, "pre-clear");
    indexed->clear();
    naive->clear();
    EXPECT_EQ(indexed->entry_count(), 0u);
    EXPECT_EQ(naive->entry_count(), 0u);
    drive_pair(*indexed, *naive, rng, shape, false, false, "post-clear");
}

TEST(TableEngineDifferential, TernaryTieBreaksOnInsertionOrder) {
    // Two overlapping rows with equal priority: the first inserted must win
    // in both families, under both priority orders.
    for (const bool inverted : {false, true}) {
        for (auto make : {dataplane::make_ternary_engine,
                          dataplane::make_naive_ternary_engine}) {
            auto eng = make(16, 8, inverted);
            TableEntry first;
            first.key_values = {Bitvec(16, 0x1200)};
            first.key_masks = {Bitvec(16, 0xff00)};
            first.priority = 3;
            first.action_id = 1;
            TableEntry second;
            second.key_values = {Bitvec(16, 0x0034)};
            second.key_masks = {Bitvec(16, 0x00ff)};
            second.priority = 3;
            second.action_id = 2;
            ASSERT_EQ(eng->insert(first), InsertStatus::ok);
            ASSERT_EQ(eng->insert(second), InsertStatus::ok);
            const std::vector<Bitvec> probe = {Bitvec(16, 0x1234)};  // matches both
            const ActionEntry* hit = eng->lookup(probe);
            ASSERT_NE(hit, nullptr);
            EXPECT_EQ(hit->action_id, 1) << "inverted=" << inverted;
        }
    }
}

}  // namespace
