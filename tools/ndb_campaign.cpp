// ndb_campaign: differential fuzzing campaign driver.
//
//   ndb_campaign [--seeds N] [--seed BASE] [--threads T] [--batch B]
//                [--programs a,b,...] [--backends a,b,...]
//                [--engine interp|compiled]
//                [--no-localize] [--no-minimize] [--out BENCH_campaign.json]
//                [--coverage] [--mutate] [--mutation-rate F]
//                [--soak N] [--corpus-dir DIR]
//
// Runs N seeded scenarios differentially against every selected backend,
// prints the triaged divergence report, and writes a benchmark JSON with
// both the deterministic findings and the wall-clock throughput numbers
// (scenarios/sec, packets/sec) so the perf trajectory is measurable.
//
// --coverage switches the engine to coverage-guided adaptive seed
// scheduling: programs earning fresh coverage edges or fingerprints get
// more of each round's budget, and the report JSON grows a deterministic
// edges-discovered / coverage-% over-time series.
//
// --mutate turns the guided scheduler into the full greybox loop (implies
// --coverage): interesting scenarios are retained in a mutation corpus
// (preloaded from --corpus-dir recipes when present) and later rounds draw
// a --mutation-rate mix of fresh seeds and splice/havoc mutants over it;
// every mutated divergence records its replayable parentage recipe.
//
// --soak N runs an N-scenario guided campaign and appends every finding
// with a new unique fingerprint to the regression corpus (deterministic
// soak_*.corpus recipes under --corpus-dir, default tests/corpus), where
// corpus_replay_test replays them forever after -- mutate= recipe line
// included when the finding came out of the mutation engine.
//
// --concolic closes the hybrid loop (implies --coverage): at every guided
// round barrier, coverage slots still dark on the reference device are
// mapped back to IR sites, handed to the symbolic layer, and every solved
// seed that provably re-lights its slot is injected into the corpus and
// scheduled ahead of the next round (report lines `concolic+ <recipe>`).
//
// --replay RECIPE runs exactly one recorded scenario -- an encoded
// MutationRecipe ('#' head) or ConcolicRecipe ('@' head) -- through the
// ordinary detection/triage path.
//
// --mgmt-fault-plan SPEC delivers every DUT's configuration through a
// fault-injected wire channel (the reference's stays clean); config ops
// that exhaust their retry budget surface as "mgmt"-kind divergences.
//
// --workers N runs the uniform sweep on the crash-tolerant multi-process
// fabric: forked workers speak the wire protocol over socketpairs, a
// heartbeat watchdog respawns killed/hung workers and re-dispatches their
// shards, and the report stays byte-identical to the single-process run
// apart from its fabric accounting block.  --fault-plan SPEC faults the
// parent<->worker links themselves; --kill-worker-after N SIGKILLs worker
// 0 after N shard results (a recovery drill for CI).
//
// --metrics-out FILE / --trace-out FILE switch on the observe-only
// telemetry layer: FILE gets the merged metrics snapshot JSON (counters,
// gauges, latency histograms) or the merged Chrome trace_event timeline
// (open in chrome://tracing or ui.perfetto.dev).  Under --workers the
// workers ship their deltas home over heartbeat acks, so both files cover
// every process.  Telemetry never changes the report or the exit code: an
// unwritable path costs a stderr diagnostic, nothing more.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/fabric.h"
#include "core/soak.h"
#include "obs/telemetry.h"
#include "util/strings.h"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
    std::vector<std::string> out = ndb::util::split(s, ',');
    std::erase(out, "");
    return out;
}

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--seeds N] [--seed BASE] [--threads T] [--batch B]\n"
                 "          [--programs a,b,...] [--backends a,b,...]\n"
                 "          [--engine interp|compiled]\n"
                 "          [--no-localize] [--no-minimize] [--out FILE]\n"
                 "          [--coverage] [--mutate] [--mutation-rate F]\n"
                 "          [--concolic] [--concolic-per-round N]\n"
                 "          [--soak N] [--corpus-dir DIR] [--replay RECIPE]\n"
                 "          [--mgmt-fault-plan SPEC]\n"
                 "          [--workers N] [--fault-plan SPEC] [--shard-size N]\n"
                 "          [--kill-worker-after N]\n"
                 "          [--metrics-out FILE] [--trace-out FILE]\n",
                 argv0);
    return 2;
}

// Strict numeric option parsing: non-numeric text, trailing junk, overflow
// and out-of-range values are usage errors, never silently zero (what the
// old atoi/strtoull calls degenerated to).
std::uint64_t parse_count(const char* flag, const char* text,
                          std::uint64_t min_value, std::uint64_t max_value) {
    std::uint64_t v = 0;
    if (!ndb::util::parse_u64(text, v) || v < min_value || v > max_value) {
        std::fprintf(stderr, "%s wants an integer in [%llu, %llu], got '%s'\n",
                     flag, static_cast<unsigned long long>(min_value),
                     static_cast<unsigned long long>(max_value), text);
        std::exit(2);
    }
    return v;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace ndb;

    core::CampaignConfig config;
    config.scenarios = 256;
    config.threads = 2;
    std::string out_path = "BENCH_campaign.json";
    bool soak = false;
    std::string corpus_dir = "tests/corpus";
    core::FabricConfig fabric;
    int workers = 0;  // 0 = in-process engine; >0 = multi-process fabric
    std::string metrics_out;
    std::string trace_out;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--seeds" || arg == "-n") {
            config.scenarios = parse_count("--seeds", value(), 1, 1u << 24);
        } else if (arg == "--seed") {
            config.base_seed = parse_count("--seed", value(), 0, UINT64_MAX);
        } else if (arg == "--threads" || arg == "-j") {
            config.threads =
                static_cast<int>(parse_count("--threads", value(), 1, 64));
        } else if (arg == "--batch") {
            config.batch_size = static_cast<std::size_t>(
                parse_count("--batch", value(), 1, 1u << 20));
        } else if (arg == "--programs") {
            config.programs = split_csv(value());
        } else if (arg == "--backends") {
            for (const auto& name : split_csv(value())) {
                config.duts.push_back(core::BackendSpec{name, std::nullopt, name});
            }
        } else if (arg == "--engine") {
            // Defaults to dataplane::default_engine() (compiled, or the
            // NDB_ENGINE override); both engines produce the identical
            // report, the flag exists for oracle runs and A/B timing.
            const char* text = value();
            const auto parsed = dataplane::engine_from_name(text);
            if (!parsed) {
                std::fprintf(stderr, "--engine wants interp or compiled, got '%s'\n",
                             text);
                return 2;
            }
            config.engine = *parsed;
        } else if (arg == "--coverage") {
            config.coverage = true;
        } else if (arg == "--mutate") {
            config.mutate = true;  // implies the guided scheduler
        } else if (arg == "--mutation-rate") {
            // Strict: a typo here would silently degenerate the greybox
            // loop to fresh-seed guided mode.
            const char* text = value();
            if (!util::parse_double(text, config.mutation_rate) ||
                config.mutation_rate < 0.0 || config.mutation_rate > 1.0) {
                std::fprintf(stderr, "--mutation-rate wants a number in [0,1], got '%s'\n",
                             text);
                return 2;
            }
        } else if (arg == "--concolic") {
            config.concolic = true;  // implies the guided scheduler
        } else if (arg == "--concolic-per-round") {
            config.concolic_per_round =
                parse_count("--concolic-per-round", value(), 1, 1024);
        } else if (arg == "--replay") {
            config.mutation_recipe = value();
        } else if (arg == "--soak") {
            soak = true;
            config.coverage = true;  // soaking wants the guided scheduler
            config.scenarios = parse_count("--soak", value(), 1, 1u << 24);
        } else if (arg == "--corpus-dir") {
            corpus_dir = value();
        } else if (arg == "--mgmt-fault-plan") {
            // Validated by FaultPlan::parse before any work starts.
            config.mgmt_fault_plan = value();
        } else if (arg == "--workers") {
            workers = static_cast<int>(parse_count("--workers", value(), 1, 64));
        } else if (arg == "--fault-plan") {
            fabric.link_fault_plan = value();
        } else if (arg == "--shard-size") {
            fabric.shard_size = parse_count("--shard-size", value(), 1, 4096);
        } else if (arg == "--kill-worker-after") {
            fabric.kill_worker_after_results = static_cast<int>(
                parse_count("--kill-worker-after", value(), 0, 1u << 20));
        } else if (arg == "--metrics-out") {
            // Strict like the numeric flags: an empty path is a typo, not a
            // request for an unnamed file.
            metrics_out = value();
            if (metrics_out.empty()) {
                std::fprintf(stderr, "--metrics-out wants a file path\n");
                return 2;
            }
        } else if (arg == "--trace-out") {
            trace_out = value();
            if (trace_out.empty()) {
                std::fprintf(stderr, "--trace-out wants a file path\n");
                return 2;
            }
        } else if (arg == "--no-localize") {
            config.localize = false;
        } else if (arg == "--no-minimize") {
            config.minimize = false;
        } else if (arg == "--out" || arg == "-o") {
            out_path = value();
        } else {
            return usage(argv[0]);
        }
    }

    if (soak) {
        // Corpus recipes must replay under corpus_replay_test's contract:
        // a localized stage in the fingerprint and a minimized reproducer.
        // Soaking therefore overrides --no-localize / --no-minimize.
        config.localize = true;
        config.minimize = true;
    }
    if (config.mutate) {
        // The mutation engine seeds its corpus from the stored recipes; the
        // same directory a soak appends to is the natural parent pool.
        config.corpus_dir = corpus_dir;
    }

    // Enable before the run (and before any fabric fork, so workers inherit
    // the flags and the shared trace epoch).
    obs::Telemetry::set_enabled(!metrics_out.empty(), !trace_out.empty());

    core::CampaignReport report;
    core::CampaignStats stats;
    try {
        if (workers > 0) {
            fabric.campaign = config;
            fabric.workers = workers;
            core::FabricEngine engine(std::move(fabric));
            report = engine.run();
            stats = engine.stats();
        } else {
            core::CampaignEngine engine(config);
            report = engine.run();
            stats = engine.stats();
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    std::fputs(report.to_string().c_str(), stdout);
    if (workers > 0) {
        std::printf("throughput: %.0f scenarios/sec, %.0f packets/sec (%.3fs wall, %d worker process(es))\n",
                    stats.scenarios_per_sec, stats.packets_per_sec,
                    stats.wall_seconds, workers);
    } else {
        std::printf("throughput: %.0f scenarios/sec, %.0f packets/sec (%.3fs wall, %d thread(s))\n",
                    stats.scenarios_per_sec, stats.packets_per_sec,
                    stats.wall_seconds, config.threads);
    }

    if (soak) {
        const core::SoakResult grown =
            core::append_unique_corpus_entries(report, corpus_dir);
        std::printf("soak: %zu new corpus entr%s, %zu already known (%s)\n",
                    grown.written.size(),
                    grown.written.size() == 1 ? "y" : "ies",
                    grown.skipped_known, corpus_dir.c_str());
        for (const auto& name : grown.written) {
            std::printf("  + %s\n", name.c_str());
        }
    }

    // BENCH_campaign.json: wall-clock wrapper around the deterministic report.
    std::string json = "{\n";
    json += "  \"bench\": \"campaign\",\n";
    json += util::format("  \"threads\": %d,\n", config.threads);
    json += util::format("  \"batch_size\": %zu,\n", config.batch_size);
    json += util::format("  \"wall_seconds\": %.6f,\n", stats.wall_seconds);
    json += util::format("  \"scenarios_per_sec\": %.1f,\n", stats.scenarios_per_sec);
    json += util::format("  \"packets_per_sec\": %.1f,\n", stats.packets_per_sec);
    json += "  \"report\": ";
    {
        // Indent the nested report two spaces to keep the file readable.
        const std::string inner = report.to_json();
        std::string indented;
        for (std::size_t i = 0; i < inner.size(); ++i) {
            indented += inner[i];
            if (inner[i] == '\n' && i + 1 < inner.size()) indented += "  ";
        }
        json += indented;
    }
    json += "}\n";

    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    out << json;
    std::printf("wrote %s\n", out_path.c_str());

    // Telemetry exports come last and never change the exit code: losing an
    // observability file is a diagnostic, not a failed campaign.
    if (!metrics_out.empty()) {
        std::string error;
        if (obs::Telemetry::write_file(metrics_out, obs::Telemetry::metrics_json(),
                                       error)) {
            std::printf("wrote %s\n", metrics_out.c_str());
        } else {
            std::fprintf(stderr, "warning: cannot write %s: %s\n",
                         metrics_out.c_str(), error.c_str());
        }
    }
    if (!trace_out.empty()) {
        std::string error;
        if (obs::Telemetry::write_file(trace_out, obs::Telemetry::trace_json(),
                                       error)) {
            std::printf("wrote %s\n", trace_out.c_str());
        } else {
            std::fprintf(stderr, "warning: cannot write %s: %s\n",
                         trace_out.c_str(), error.c_str());
        }
    }

    return 0;
}
