// ndb_bench: pipeline + table-engine micro-benchmark harness.
//
//   ndb_bench [--packets N] [--lookups N] [--seeds N] [--threads T]
//             [--out BENCH_pipeline.json] [--baseline FILE]
//
// Three benches, written as one JSON document so the repo has a perf
// trajectory across PRs:
//
//   * pipeline  -- packets/sec through the reference device for every
//                  fuzzable catalogue program (config applied once, the
//                  scenario's packet stream replayed in batches), run once
//                  per execution engine (threaded-code compiled vs the
//                  tree-walking interpreter oracle, with the per-program
//                  compiled_speedup ratio), plus a coverage-instrumented
//                  compiled pass and the derived coverage-overhead row
//                  (the cost of the CoverageMap hooks when enabled);
//   * tables    -- lookups/sec per match-engine kind on populated engines
//                  (1k-entry exact, 1k-prefix LPM, 256-row ternary);
//   * campaign  -- scenarios/sec and packets/sec of a bounded differential
//                  campaign sweep (the end-to-end number CI tracks).
//
// --baseline FILE compares the run against committed reference numbers and
// exits non-zero when pipeline packets/sec (either engine) regresses by
// more than 30%, so CI catches hot-path regressions without flaking on
// machine variance.
// --coverage-gate PCT additionally fails the run when the enabled-coverage
// pass costs more than PCT percent of aggregate pipeline throughput.
// --metrics-gate PCT does the same for the telemetry layer: a fourth
// interleaved pass runs with metrics + tracing enabled, reports each
// program's sampled packet-latency percentiles (p50/p90/p99 ns), and fails
// the run when telemetry costs more than PCT percent of throughput.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/generator.h"
#include "core/specgen.h"
#include "coverage/coverage.h"
#include "dataplane/engine.h"
#include "dataplane/tables.h"
#include "obs/telemetry.h"
#include "target/device.h"
#include "util/strings.h"

namespace {

using Clock = std::chrono::steady_clock;
using ndb::util::Bitvec;

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration_cast<std::chrono::duration<double>>(
               Clock::now() - t0)
        .count();
}

struct ProgramBench {
    std::string name;
    std::uint64_t packets = 0;
    double seconds = 0;
    double pps = 0;
};

// Per-program engine comparison: the compiled number is the headline, the
// interpreter number is the oracle's cost, the ratio is the payoff.
struct ProgramRow {
    ProgramBench compiled;
    ProgramBench interp;
    double speedup = 0;
    // Sampled whole-packet latency percentiles from the telemetry pass.
    std::uint64_t p50_ns = 0;
    std::uint64_t p90_ns = 0;
    std::uint64_t p99_ns = 0;
};

// Replays one catalogue scenario's packet stream through a reference device
// until ~`target_packets` injections have happened; returns packets/sec.
// When `coverage` is non-null the device streams execution edges into it
// (the instrumented pass the coverage-overhead row is derived from).
ProgramBench bench_program(const std::string& name, std::uint64_t target_packets,
                           ndb::dataplane::Engine engine,
                           ndb::coverage::CoverageMap* coverage = nullptr) {
    ndb::core::SpecGenerator gen({name});
    const ndb::core::Scenario sc = gen.make(/*seed=*/42);

    auto dev = ndb::target::make_device("reference");
    if (!dev || !dev->load(*sc.compiled)) {
        std::fprintf(stderr, "bench: cannot set up program '%s'\n", name.c_str());
        std::exit(1);
    }
    dev->set_engine(engine);
    dev->set_coverage(coverage);
    dev->apply(sc.config);

    ndb::core::TestPacketGenerator pgen(sc.spec);
    std::vector<ndb::packet::Packet> stream;
    stream.reserve(sc.spec.count);
    for (std::uint64_t seq = 1; seq <= sc.spec.count; ++seq) {
        stream.push_back(pgen.make_packet(seq, 1'000'000 + (seq - 1) * 672));
    }

    ProgramBench out;
    out.name = name;
    std::vector<ndb::packet::Packet> drained;
    const auto t0 = Clock::now();
    while (out.packets < target_packets) {
        for (const auto& pkt : stream) {
            dev->inject(pkt);
            ++out.packets;
        }
        for (int p = 0; p < dev->config().num_ports; ++p) {
            drained.clear();
            dev->drain_port_into(static_cast<std::uint32_t>(p), drained);
        }
    }
    out.seconds = seconds_since(t0);
    out.pps = out.seconds > 0 ? static_cast<double>(out.packets) / out.seconds : 0;
    return out;
}

struct EngineBench {
    std::string kind;
    std::size_t entries = 0;
    std::uint64_t lookups = 0;
    double seconds = 0;
    double lps = 0;
};

EngineBench bench_engine(const std::string& kind, ndb::dataplane::MatchEngine& eng,
                         std::size_t entries,
                         const std::vector<std::vector<Bitvec>>& probes,
                         std::uint64_t target_lookups) {
    EngineBench out;
    out.kind = kind;
    out.entries = entries;
    std::uint64_t hits = 0;
    const auto t0 = Clock::now();
    while (out.lookups < target_lookups) {
        for (const auto& probe : probes) {
            if (eng.lookup(probe)) ++hits;
            ++out.lookups;
        }
    }
    out.seconds = seconds_since(t0);
    out.lps = out.seconds > 0 ? static_cast<double>(out.lookups) / out.seconds : 0;
    if (hits == 0) std::fprintf(stderr, "bench: %s saw no hits\n", kind.c_str());
    return out;
}

// Deterministic 64-bit mix for synthetic keys.
std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

std::vector<EngineBench> bench_tables(std::uint64_t target_lookups) {
    using namespace ndb::dataplane;
    std::vector<EngineBench> out;

    {  // exact: 1k entries over a 48-bit key, probes alternate hit/miss
        constexpr int kWidth = 48;
        constexpr std::size_t kEntries = 1024;
        auto indexed = make_exact_engine(kWidth, kEntries);
        auto naive = make_naive_exact_engine(kWidth, kEntries);
        for (std::size_t i = 0; i < kEntries; ++i) {
            TableEntry e;
            e.key_values = {Bitvec(kWidth, mix(i))};
            e.action_id = static_cast<int>(i & 7);
            indexed->insert(e);
            naive->insert(e);
        }
        std::vector<std::vector<Bitvec>> probes;
        for (std::size_t i = 0; i < 256; ++i) {
            probes.push_back({Bitvec(kWidth, i % 2 ? mix(i) : mix(i) + 1)});
        }
        out.push_back(bench_engine("exact", *indexed, kEntries, probes, target_lookups));
        out.push_back(bench_engine("exact_naive", *naive, kEntries, probes,
                                   target_lookups / 8));
    }

    {  // lpm: 1k prefixes across lengths 8..32 on a 32-bit key
        constexpr int kWidth = 32;
        constexpr std::size_t kEntries = 1024;
        auto indexed = make_lpm_engine(kWidth, kEntries);
        auto naive = make_naive_lpm_engine(kWidth, kEntries);
        std::size_t inserted = 0;
        for (std::size_t i = 0; inserted < kEntries; ++i) {
            TableEntry e;
            const int plen = 8 + static_cast<int>(i % 25);
            e.key_values = {Bitvec(kWidth, mix(i) & (~0ull << (kWidth - plen)))};
            e.prefix_len = plen;
            e.action_id = static_cast<int>(i & 7);
            if (indexed->insert(e) == InsertStatus::ok) ++inserted;
            naive->insert(e);
        }
        std::vector<std::vector<Bitvec>> probes;
        for (std::size_t i = 0; i < 256; ++i) {
            probes.push_back({Bitvec(kWidth, mix(i * 3))});
        }
        out.push_back(bench_engine("lpm", *indexed, kEntries, probes, target_lookups));
        out.push_back(bench_engine("lpm_naive", *naive, kEntries, probes,
                                   target_lookups / 8));
    }

    {  // ternary: 256 overlapping masked rows over a 48-bit key
        constexpr int kWidth = 48;
        constexpr std::size_t kEntries = 256;
        auto indexed = make_ternary_engine(kWidth, kEntries, /*inverted=*/false);
        auto naive = make_naive_ternary_engine(kWidth, kEntries, /*inverted=*/false);
        for (std::size_t i = 0; i < kEntries; ++i) {
            TableEntry e;
            e.key_values = {Bitvec(kWidth, mix(i))};
            e.key_masks = {Bitvec(kWidth, mix(i * 7) | 0xffffull)};
            e.priority = static_cast<int>(i % 17);
            e.action_id = static_cast<int>(i & 7);
            indexed->insert(e);
            naive->insert(e);
        }
        std::vector<std::vector<Bitvec>> probes;
        for (std::size_t i = 0; i < 256; ++i) {
            probes.push_back({Bitvec(kWidth, mix(i * 5))});
        }
        out.push_back(
            bench_engine("ternary", *indexed, kEntries, probes, target_lookups / 4));
        out.push_back(bench_engine("ternary_naive", *naive, kEntries, probes,
                                   target_lookups / 32));
    }

    return out;
}

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--packets N] [--lookups N] [--seeds N] [--threads T]\n"
                 "          [--out FILE] [--baseline FILE] [--coverage-gate PCT]\n"
                 "          [--metrics-gate PCT]\n",
                 argv0);
    return 2;
}

// Strict numeric option parsing: non-numeric text, trailing junk, overflow
// and zero are usage errors, never a silent 0-iteration benchmark (what
// the old atoi/strtoull calls degenerated to).
std::uint64_t parse_count(const char* flag, const char* text,
                          std::uint64_t min_value, std::uint64_t max_value) {
    std::uint64_t v = 0;
    if (!ndb::util::parse_u64(text, v) || v < min_value || v > max_value) {
        std::fprintf(stderr, "%s wants an integer in [%llu, %llu], got '%s'\n",
                     flag, static_cast<unsigned long long>(min_value),
                     static_cast<unsigned long long>(max_value), text);
        std::exit(2);
    }
    return v;
}

// Pulls `"key": <number>` out of a flat JSON document (enough for the
// baseline files this tool writes itself).
bool json_number(const std::string& doc, const std::string& key, double& out) {
    const std::string needle = "\"" + key + "\":";
    const auto pos = doc.find(needle);
    if (pos == std::string::npos) return false;
    out = std::strtod(doc.c_str() + pos + needle.size(), nullptr);
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    using ndb::util::format;

    std::uint64_t packets = 200'000;
    std::uint64_t lookups = 2'000'000;
    std::uint64_t seeds = 400;
    int threads = 2;
    std::string out_path = "BENCH_pipeline.json";
    std::string baseline_path;
    double coverage_gate_pct = -1.0;  // <0 = report only, no gate
    double metrics_gate_pct = -1.0;   // <0 = report only, no gate

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--packets") {
            packets = parse_count("--packets", value(), 1, 1ull << 32);
        } else if (arg == "--lookups") {
            lookups = parse_count("--lookups", value(), 1, 1ull << 32);
        } else if (arg == "--seeds") {
            seeds = parse_count("--seeds", value(), 1, 1u << 24);
        } else if (arg == "--threads" || arg == "-j") {
            threads =
                static_cast<int>(parse_count("--threads", value(), 1, 64));
        } else if (arg == "--out" || arg == "-o") {
            out_path = value();
        } else if (arg == "--baseline") {
            baseline_path = value();
        } else if (arg == "--coverage-gate") {
            const char* text = value();
            if (!ndb::util::parse_double(text, coverage_gate_pct) ||
                coverage_gate_pct < 0.0 || coverage_gate_pct > 100.0) {
                std::fprintf(stderr,
                             "--coverage-gate wants a percentage in [0,100], "
                             "got '%s'\n",
                             text);
                return 2;
            }
        } else if (arg == "--metrics-gate") {
            const char* text = value();
            if (!ndb::util::parse_double(text, metrics_gate_pct) ||
                metrics_gate_pct < 0.0 || metrics_gate_pct > 100.0) {
                std::fprintf(stderr,
                             "--metrics-gate wants a percentage in [0,100], "
                             "got '%s'\n",
                             text);
                return 2;
            }
        } else {
            return usage(argv[0]);
        }
    }

    // --- pipeline ------------------------------------------------------------
    // Each program runs twice back to back: a plain pass and a pass with
    // coverage instrumentation streaming into one shared map.  The
    // interleaving matters for the overhead gate below -- a transient
    // slowdown on a noisy CI runner lands on both sums instead of
    // masquerading as instrumentation cost.
    ndb::coverage::CoverageMap coverage_map;
    std::vector<ProgramRow> programs;
    std::uint64_t total_packets = 0;
    double total_seconds = 0;
    std::uint64_t interp_packets = 0;
    double interp_seconds = 0;
    std::uint64_t cov_packets = 0;
    double cov_seconds = 0;
    std::uint64_t tel_packets = 0;
    double tel_seconds = 0;
    for (const auto& name : ndb::core::SpecGenerator::default_programs()) {
        // Interleave the four passes per program (compiled, interpreter,
        // compiled+coverage, compiled+telemetry) so runner noise lands on
        // all sums at once.
        ProgramRow row;
        row.compiled =
            bench_program(name, packets, ndb::dataplane::Engine::compiled);
        // The interpreter is ~an order of magnitude slower; a smaller target
        // keeps wall time sane while its pps stays a valid rate.
        row.interp = bench_program(name, packets / 8 + 1,
                                   ndb::dataplane::Engine::interpreter);
        row.speedup =
            row.interp.pps > 0 ? row.compiled.pps / row.interp.pps : 0;
        std::printf("pipeline  %-16s %9.0f pkts/sec compiled, %9.0f interp "
                    "(x%.1f)\n",
                    name.c_str(), row.compiled.pps, row.interp.pps, row.speedup);
        total_packets += row.compiled.packets;
        total_seconds += row.compiled.seconds;
        interp_packets += row.interp.packets;
        interp_seconds += row.interp.seconds;

        const ProgramBench cov = bench_program(
            name, packets, ndb::dataplane::Engine::compiled, &coverage_map);
        cov_packets += cov.packets;
        cov_seconds += cov.seconds;

        // Telemetry pass: the full layer (metrics + tracing) enabled only
        // for the duration, reset per program so the latency histogram
        // covers exactly this program's packets.
        ndb::obs::Telemetry::set_enabled(true, true);
        ndb::obs::Telemetry::reset();
        const ProgramBench tel =
            bench_program(name, packets, ndb::dataplane::Engine::compiled);
        const ndb::obs::MetricsSnapshot snap =
            ndb::obs::Metrics::instance().snapshot();
        ndb::obs::Telemetry::set_enabled(false, false);
        tel_packets += tel.packets;
        tel_seconds += tel.seconds;
        const ndb::obs::HistogramData& lat = snap.hists[static_cast<std::size_t>(
            ndb::obs::Hist::packet_ns_compiled)];
        row.p50_ns = lat.percentile(50.0);
        row.p90_ns = lat.percentile(90.0);
        row.p99_ns = lat.percentile(99.0);
        std::printf("latency   %-16s p50 %6llu ns, p90 %6llu ns, p99 %6llu ns "
                    "(sampled)\n",
                    name.c_str(), static_cast<unsigned long long>(row.p50_ns),
                    static_cast<unsigned long long>(row.p90_ns),
                    static_cast<unsigned long long>(row.p99_ns));
        programs.push_back(std::move(row));
    }
    const double pipeline_pps =
        total_seconds > 0 ? static_cast<double>(total_packets) / total_seconds : 0;
    const double pipeline_pps_interp =
        interp_seconds > 0 ? static_cast<double>(interp_packets) / interp_seconds
                           : 0;
    const double compiled_speedup =
        pipeline_pps_interp > 0 ? pipeline_pps / pipeline_pps_interp : 0;
    std::printf("pipeline  %-16s %9.0f pkts/sec compiled, %9.0f interp (x%.1f)\n",
                "(aggregate)", pipeline_pps, pipeline_pps_interp,
                compiled_speedup);

    const double coverage_pps =
        cov_seconds > 0 ? static_cast<double>(cov_packets) / cov_seconds : 0;
    const double coverage_overhead_pct =
        pipeline_pps > 0 ? 100.0 * (1.0 - coverage_pps / pipeline_pps) : 0;
    std::printf("pipeline  %-16s %9.0f pkts/sec (coverage on: %.1f%% overhead, "
                "%zu edges)\n",
                "(coverage)", coverage_pps, coverage_overhead_pct,
                coverage_map.edges_covered());

    const double telemetry_pps =
        tel_seconds > 0 ? static_cast<double>(tel_packets) / tel_seconds : 0;
    const double telemetry_overhead_pct =
        pipeline_pps > 0 ? 100.0 * (1.0 - telemetry_pps / pipeline_pps) : 0;
    std::printf("pipeline  %-16s %9.0f pkts/sec (telemetry on: %.1f%% "
                "overhead)\n",
                "(telemetry)", telemetry_pps, telemetry_overhead_pct);

    // --- tables --------------------------------------------------------------
    const std::vector<EngineBench> engines = bench_tables(lookups);
    for (const auto& e : engines) {
        std::printf("tables    %-16s %9.0f lookups/sec (%zu entries)\n",
                    e.kind.c_str(), e.lps, e.entries);
    }

    // --- campaign ------------------------------------------------------------
    ndb::core::CampaignConfig config;
    config.scenarios = seeds;
    config.threads = threads;
    ndb::core::CampaignEngine engine(config);
    const ndb::core::CampaignReport report = engine.run();
    const ndb::core::CampaignStats& stats = engine.stats();
    std::printf("campaign  %-16s %9.1f scenarios/sec, %.0f pkts/sec\n", "(sweep)",
                stats.scenarios_per_sec, stats.packets_per_sec);

    // --- JSON ----------------------------------------------------------------
    std::string json = "{\n";
    json += "  \"bench\": \"pipeline\",\n";
    json += format("  \"pipeline_pps\": %.1f,\n", pipeline_pps);
    json += format("  \"pipeline_pps_interp\": %.1f,\n", pipeline_pps_interp);
    json += format("  \"compiled_speedup\": %.2f,\n", compiled_speedup);
    json += format("  \"pipeline_coverage_pps\": %.1f,\n", coverage_pps);
    json += format("  \"coverage_overhead_pct\": %.2f,\n", coverage_overhead_pct);
    json += format("  \"coverage_edges\": %zu,\n", coverage_map.edges_covered());
    json += format("  \"pipeline_telemetry_pps\": %.1f,\n", telemetry_pps);
    json += format("  \"telemetry_overhead_pct\": %.2f,\n",
                   telemetry_overhead_pct);
    json += "  \"programs\": [";
    for (std::size_t i = 0; i < programs.size(); ++i) {
        const auto& row = programs[i];
        json += i ? ",\n    " : "\n    ";
        json += format("{\"name\": \"%s\", \"packets\": %llu, "
                       "\"seconds\": %.6f, \"pps\": %.1f, "
                       "\"pps_interp\": %.1f, \"compiled_speedup\": %.2f, "
                       "\"latency_p50_ns\": %llu, \"latency_p90_ns\": %llu, "
                       "\"latency_p99_ns\": %llu}",
                       row.compiled.name.c_str(),
                       static_cast<unsigned long long>(row.compiled.packets),
                       row.compiled.seconds, row.compiled.pps, row.interp.pps,
                       row.speedup,
                       static_cast<unsigned long long>(row.p50_ns),
                       static_cast<unsigned long long>(row.p90_ns),
                       static_cast<unsigned long long>(row.p99_ns));
    }
    json += "\n  ],\n";
    json += "  \"tables\": [";
    for (std::size_t i = 0; i < engines.size(); ++i) {
        const auto& e = engines[i];
        json += i ? ",\n    " : "\n    ";
        json += format("{\"kind\": \"%s\", \"entries\": %zu, "
                       "\"lookups\": %llu, \"seconds\": %.6f, "
                       "\"lookups_per_sec_%s\": %.1f}",
                       e.kind.c_str(), e.entries,
                       static_cast<unsigned long long>(e.lookups), e.seconds,
                       e.kind.c_str(), e.lps);
    }
    json += "\n  ],\n";
    json += format("  \"campaign_scenarios\": %llu,\n",
                   static_cast<unsigned long long>(seeds));
    json += format("  \"campaign_threads\": %d,\n", threads);
    json += format("  \"campaign_scenarios_per_sec\": %.1f,\n",
                   stats.scenarios_per_sec);
    json += format("  \"campaign_packets_per_sec\": %.1f,\n",
                   stats.packets_per_sec);
    json += format("  \"campaign_divergences_unique\": %zu\n",
                   report.divergences.size());
    json += "}\n";

    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    out << json;
    std::printf("wrote %s\n", out_path.c_str());

    // --- baseline gate -------------------------------------------------------
    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path);
        if (!in) {
            std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
            return 1;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        const std::string doc = buf.str();
        double base_pps = 0;
        if (!json_number(doc, "pipeline_pps", base_pps) || base_pps <= 0) {
            std::fprintf(stderr, "baseline %s has no pipeline_pps\n",
                         baseline_path.c_str());
            return 1;
        }
        const double floor = base_pps * 0.7;
        std::printf("baseline gate: pipeline_pps %.0f vs committed %.0f "
                    "(floor %.0f)\n",
                    pipeline_pps, base_pps, floor);
        if (pipeline_pps < floor) {
            std::fprintf(stderr,
                         "FAIL: pipeline packets/sec regressed more than 30%% "
                         "(%.0f < %.0f)\n",
                         pipeline_pps, floor);
            return 1;
        }
        // Gate the oracle too when the baseline carries its floor: the
        // interpreter stays the semantic reference and must not quietly rot.
        double base_interp = 0;
        if (json_number(doc, "pipeline_pps_interp", base_interp) &&
            base_interp > 0) {
            const double interp_floor = base_interp * 0.7;
            std::printf("baseline gate: pipeline_pps_interp %.0f vs committed "
                        "%.0f (floor %.0f)\n",
                        pipeline_pps_interp, base_interp, interp_floor);
            if (pipeline_pps_interp < interp_floor) {
                std::fprintf(stderr,
                             "FAIL: interpreter packets/sec regressed more "
                             "than 30%% (%.0f < %.0f)\n",
                             pipeline_pps_interp, interp_floor);
                return 1;
            }
        }
        // Per-program absolute floors (both engines).  The baseline carries
        // a floor_<program>_pps[_interp] key for programs whose throughput
        // CI tracks individually -- the stateful NFs, whose register traffic
        // makes them the slowest rows in the sweep.
        for (const auto& row : programs) {
            double prog_floor = 0;
            if (json_number(doc, "floor_" + row.compiled.name + "_pps",
                            prog_floor) &&
                prog_floor > 0) {
                std::printf("baseline gate: %s %.0f pkts/sec vs floor %.0f\n",
                            row.compiled.name.c_str(), row.compiled.pps,
                            prog_floor);
                if (row.compiled.pps < prog_floor) {
                    std::fprintf(stderr,
                                 "FAIL: %s compiled packets/sec below floor "
                                 "(%.0f < %.0f)\n",
                                 row.compiled.name.c_str(), row.compiled.pps,
                                 prog_floor);
                    return 1;
                }
            }
            if (json_number(doc, "floor_" + row.compiled.name + "_pps_interp",
                            prog_floor) &&
                prog_floor > 0) {
                std::printf(
                    "baseline gate: %s %.0f interp pkts/sec vs floor %.0f\n",
                    row.compiled.name.c_str(), row.interp.pps, prog_floor);
                if (row.interp.pps < prog_floor) {
                    std::fprintf(stderr,
                                 "FAIL: %s interpreter packets/sec below floor "
                                 "(%.0f < %.0f)\n",
                                 row.compiled.name.c_str(), row.interp.pps,
                                 prog_floor);
                    return 1;
                }
            }
        }
    }

    // --- coverage-overhead gate ----------------------------------------------
    if (coverage_gate_pct >= 0) {
        std::printf("coverage gate: %.2f%% overhead vs limit %.2f%%\n",
                    coverage_overhead_pct, coverage_gate_pct);
        if (coverage_overhead_pct > coverage_gate_pct) {
            std::fprintf(stderr,
                         "FAIL: coverage instrumentation costs %.2f%% of "
                         "pipeline throughput (limit %.2f%%)\n",
                         coverage_overhead_pct, coverage_gate_pct);
            return 1;
        }
    }

    // --- telemetry-overhead gate ---------------------------------------------
    if (metrics_gate_pct >= 0) {
        std::printf("metrics gate: %.2f%% overhead vs limit %.2f%%\n",
                    telemetry_overhead_pct, metrics_gate_pct);
        if (telemetry_overhead_pct > metrics_gate_pct) {
            std::fprintf(stderr,
                         "FAIL: telemetry costs %.2f%% of pipeline throughput "
                         "(limit %.2f%%)\n",
                         telemetry_overhead_pct, metrics_gate_pct);
            return 1;
        }
    }
    return 0;
}
